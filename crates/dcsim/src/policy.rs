//! Pluggable buffer-sharing policies for the shared-memory switch.
//!
//! The paper's measurements (§9/§10) are explicitly meant to inform
//! buffer-sharing algorithm design, and ROADMAP open item 3 asks
//! whether the headline contention↛loss finding survives a different
//! sharing discipline. This module turns the admission test that used
//! to be inlined in `SharedBufferSwitch::try_enqueue` into a
//! [`BufferPolicy`] trait with three production implementations:
//!
//! * [`DtAlpha`] — Choudhury–Hahne Dynamic Thresholds, the fleet's
//!   deployed discipline and the one all paper exhibits were measured
//!   under. Bit-identical to the pre-trait inline code: the α·(B−Q)
//!   threshold is computed by an exact integer emulation of the old
//!   `(alpha * free as f64) as u64` (see [`DtAlpha::threshold`]), so
//!   existing seeds reproduce byte-identical traces while the enqueue
//!   path stays float-free for simlint's float-determinism roots.
//! * [`FlexibleBounds`] — FB-style sharing (Apostolaki et al., arXiv
//!   2105.10553): every queue keeps a guaranteed floor of the shared
//!   pool, and above the floor its ceiling is the even split of the
//!   pool over the quadrant's *currently active* queues, so bounds
//!   flex with contention instead of with free headroom.
//! * [`DelayDriven`] — BShare-style sharing (Agarwal et al., arXiv
//!   2605.24178): admission is keyed on the queue's estimated
//!   queueing delay (occupancy ÷ drain rate) staying within a target;
//!   all delay math is integer ns via u128 cross-multiplication.
//!
//! The ablation baselines [`CompleteSharing`] and [`StaticPartition`]
//! (formerly variants of the retired `SharingPolicy` enum) are also
//! expressed as policies, so every admission decision in the simulator
//! flows through one hook.
//!
//! Dispatch is by enum ([`ActivePolicy`]), never `Box<dyn>`: the
//! admission test runs per packet and must not allocate. The match
//! arms call the impls by explicit path (`DtAlpha::admit(p, ..)`) so
//! simlint's call-graph resolution follows the hot-path and
//! float-determinism facts through every implementation.
//!
//! Forensics stay policy-agnostic: [`AdmitDecision`] always carries
//! the governing threshold, which the switch records verbatim in each
//! [`ms_telemetry::DropForensic::dt_threshold`], whatever the policy.

use crate::time::Ns;
use ms_telemetry::DropReason;
use ms_units::{Bps, Bytes};

/// Serializable policy selection, carried by `SwitchConfig` and
/// `ScenarioSpec` (MSS1 codec) and swept by the fleet's `--policies`
/// axis. Parameters ride inside the variant so a spec is one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferPolicySpec {
    /// Choudhury–Hahne DT: admit while queue shared usage < α·(free pool).
    DtAlpha {
        /// The DT α parameter (must be positive and finite).
        alpha: f64,
    },
    /// No per-queue limit: admit while the pool physically fits the
    /// packet (one queue can starve all others).
    CompleteSharing,
    /// Fixed per-queue cap: shared capacity divided evenly over the
    /// queues of the quadrant (no statistical multiplexing).
    StaticPartition,
    /// FB-style guaranteed floor + active-queue-count-adaptive ceiling.
    FlexibleBounds,
    /// BShare-style delay-target admission.
    DelayDriven {
        /// Maximum tolerated estimated queueing delay.
        target: Ns,
        /// Assumed egress drain rate used to convert occupancy to delay.
        drain: Bps,
    },
}

impl BufferPolicySpec {
    /// The paper's deployed discipline at its §3 default (α = 1).
    pub const DEFAULT_DT: BufferPolicySpec = BufferPolicySpec::DtAlpha { alpha: 1.0 };

    /// The parameter-free tag of this spec.
    pub fn kind(&self) -> PolicyKind {
        match self {
            BufferPolicySpec::DtAlpha { .. } => PolicyKind::DtAlpha,
            BufferPolicySpec::CompleteSharing => PolicyKind::CompleteSharing,
            BufferPolicySpec::StaticPartition => PolicyKind::StaticPartition,
            BufferPolicySpec::FlexibleBounds => PolicyKind::FlexibleBounds,
            BufferPolicySpec::DelayDriven { .. } => PolicyKind::DelayDriven,
        }
    }

    /// Stable short id (`dt`, `cs`, `sp`, `fb`, `delay`) — the policy
    /// column of `RunOutcome` CSV rows and the `--policies` CLI tokens.
    pub fn id(&self) -> &'static str {
        self.kind().label()
    }

    /// Panics if the parameters are unusable (mirrors the constructor
    /// asserts the pre-trait `SwitchConfig` had for α).
    pub fn assert_valid(&self) {
        match *self {
            BufferPolicySpec::DtAlpha { alpha } => {
                assert!(
                    alpha > 0.0 && alpha.is_finite(),
                    "DT alpha must be positive and finite"
                );
            }
            BufferPolicySpec::DelayDriven { target, drain } => {
                assert!(
                    drain.is_positive(),
                    "delay-driven drain rate must be positive"
                );
                assert!(target > Ns::ZERO, "delay-driven target must be positive");
            }
            BufferPolicySpec::CompleteSharing
            | BufferPolicySpec::StaticPartition
            | BufferPolicySpec::FlexibleBounds => {}
        }
    }
}

impl Default for BufferPolicySpec {
    fn default() -> Self {
        BufferPolicySpec::DEFAULT_DT
    }
}

/// Parameter-free policy tag: the sweep-axis value of `--policies`,
/// and the stable code stored in outcome/lake rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Choudhury–Hahne Dynamic Thresholds (`dt`).
    DtAlpha,
    /// No per-queue limit (`cs`).
    CompleteSharing,
    /// Fixed even split (`sp`).
    StaticPartition,
    /// FB-style floors/ceilings (`fb`).
    FlexibleBounds,
    /// BShare-style delay target (`delay`).
    DelayDriven,
}

impl PolicyKind {
    /// Every kind, in code order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::DtAlpha,
        PolicyKind::CompleteSharing,
        PolicyKind::StaticPartition,
        PolicyKind::FlexibleBounds,
        PolicyKind::DelayDriven,
    ];

    /// Stable short label (CLI token, grid-label fragment, CSV cell).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::DtAlpha => "dt",
            PolicyKind::CompleteSharing => "cs",
            PolicyKind::StaticPartition => "sp",
            PolicyKind::FlexibleBounds => "fb",
            PolicyKind::DelayDriven => "delay",
        }
    }

    /// Stable numeric code (outcome codec / lake column). The first
    /// three match the retired `SharingPolicy` codec tags.
    pub fn code(self) -> u64 {
        match self {
            PolicyKind::DtAlpha => 0,
            PolicyKind::CompleteSharing => 1,
            PolicyKind::StaticPartition => 2,
            PolicyKind::FlexibleBounds => 3,
            PolicyKind::DelayDriven => 4,
        }
    }

    /// Inverse of [`PolicyKind::code`].
    pub fn from_code(code: u64) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Inverse of [`PolicyKind::label`].
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// A full spec for this kind: DT takes the sweep's α; the other
    /// kinds get their workspace defaults (delay-driven: 500 µs at the
    /// rack's 12.5 Gb/s downlink rate).
    pub fn spec_with_alpha(self, alpha: f64) -> BufferPolicySpec {
        match self {
            PolicyKind::DtAlpha => BufferPolicySpec::DtAlpha { alpha },
            PolicyKind::CompleteSharing => BufferPolicySpec::CompleteSharing,
            PolicyKind::StaticPartition => BufferPolicySpec::StaticPartition,
            PolicyKind::FlexibleBounds => BufferPolicySpec::FlexibleBounds,
            PolicyKind::DelayDriven => BufferPolicySpec::DelayDriven {
                target: Ns::from_micros(500),
                drain: Bps(12_500_000_000),
            },
        }
    }
}

/// The arriving packet's queue, as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct QueueCtx {
    /// Bytes this queue currently draws from the shared pool.
    pub shared_used: Bytes,
    /// Total queue occupancy (dedicated + shared).
    pub occupancy: Bytes,
}

/// The quadrant's shared pool, as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct SharedCtx {
    /// Current shared-pool occupancy of the quadrant.
    pub occupancy: Bytes,
    /// Shared-pool capacity of the quadrant.
    pub capacity: Bytes,
    /// Queues of this quadrant currently non-empty, counting the
    /// arriving packet's queue as active. Only populated when the
    /// active policy asks for it ([`ActivePolicy::needs_active_queues`]);
    /// zero otherwise, so the DT hot path never pays the O(queues) scan.
    pub active_queues: u64,
    /// Queues mapped to this quadrant.
    pub queues_per_quadrant: u64,
}

impl SharedCtx {
    /// Free pool headroom: capacity minus occupancy, floored at zero.
    pub fn headroom(&self) -> Bytes {
        let cap = self.capacity.as_u64();
        let occ = self.occupancy.as_u64();
        Bytes(if occ > cap { 0 } else { cap - occ })
    }
}

/// Outcome of a policy admission test. Both arms carry the governing
/// per-queue threshold at decision time so drop forensics can record
/// it without knowing which policy produced it (a packet that passes
/// the policy can still die on physical pool exhaustion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The policy admits the packet (subject to the switch's physical
    /// pool-fit check).
    Admit {
        /// The per-queue limit that was not exceeded.
        threshold: Bytes,
    },
    /// The policy refuses the packet.
    Reject {
        /// The per-queue limit that was exceeded.
        threshold: Bytes,
        /// The admission rule that said no.
        reason: DropReason,
    },
}

impl AdmitDecision {
    /// Whether the policy admitted the packet.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmitDecision::Admit { .. })
    }

    /// The governing threshold, whichever arm.
    pub fn threshold(&self) -> Bytes {
        match *self {
            AdmitDecision::Admit { threshold } | AdmitDecision::Reject { threshold, .. } => {
                threshold
            }
        }
    }

    /// The rejection reason, or `fallback` on the admit arm (used when
    /// physical pool exhaustion overrides an admitting policy).
    pub fn reason_or(&self, fallback: DropReason) -> DropReason {
        match *self {
            AdmitDecision::Reject { reason, .. } => reason,
            AdmitDecision::Admit { .. } => fallback,
        }
    }
}

/// A buffer-sharing discipline. Implementations must uphold the switch
/// invariants: `admit`/`mark` are called per packet, so they must not
/// panic, allocate, or touch floats (simlint enforces this through
/// [`ActivePolicy`]'s hot-path and float-root listings); decisions may
/// depend only on the passed contexts and the policy's own immutable
/// parameters, so identical seeds stay byte-identical.
pub trait BufferPolicy {
    /// Shared-pool admission test for one packet of `pkt` bytes.
    /// Dedicated-reserve admission bypasses the policy entirely (the
    /// paper's switch always honors reserves), and the physical
    /// pool-fit check stays in the switch.
    fn admit(&self, queue: &QueueCtx, shared: &SharedCtx, pkt: Bytes) -> AdmitDecision;

    /// Whether an admitted ECN-capable packet should be CE-marked,
    /// given queue occupancy before and after the enqueue.
    fn mark(&self, occ_before: Bytes, occ_after: Bytes) -> bool;

    /// Dequeue hook: `freed` bytes just left `queue`. No current
    /// policy keeps state here; the hook is where a drain-rate
    /// estimator (the full BShare design) would live.
    fn on_dequeue(&mut self, queue: &QueueCtx, shared: &SharedCtx, freed: Bytes) {
        let _ = (queue, shared, freed);
    }

    /// The per-queue threshold currently governing the quadrant, for
    /// probes and forensic records (queue-independent part only).
    fn shared_threshold(&self, shared: &SharedCtx) -> Bytes;
}

// --- exact integer emulation of the pre-trait f64 threshold ---------------

/// `value = m·2^e` with `m` a 53-bit-or-smaller integer: the exact
/// rational a finite positive f64 denotes.
fn f64_parts(x: f64) -> (u64, i32) {
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if exp == 0 {
        (frac, -1074) // subnormal
    } else {
        (frac | (1u64 << 52), exp - 1075)
    }
}

/// `value = m·2^e` after rounding `f` the way `f as f64` does: to 53
/// significant bits, round-to-nearest, ties-to-even.
fn u64_parts(f: u64) -> (u64, i32) {
    let bits = 64 - i32::try_from(f.leading_zeros()).unwrap_or(64);
    if bits <= 53 {
        return (f, 0);
    }
    // simlint: allow(cast-truncation): bits ≤ 64, so the shift is ≤ 11
    let sh = (bits - 53) as u32;
    let mut m = f >> sh;
    let rem = f & ((1u64 << sh) - 1);
    let half = 1u64 << (sh - 1);
    if rem > half || (rem == half && m & 1 == 1) {
        m += 1;
    }
    let mut e = sh as i32;
    if m == 1u64 << 53 {
        m >>= 1;
        e += 1;
    }
    (m, e)
}

/// Exact integer reproduction of `(alpha * free as f64) as u64` for
/// `alpha = ma·2^ea` (a finite positive f64's exact parts): round the
/// exact product to 53 significant bits (nearest, ties-to-even — the
/// IEEE 754 multiply), then truncate toward zero, saturating like the
/// float-to-int cast. Integer-only, so the admission call tree stays
/// on simlint's float-root list without an allow.
fn mul_alpha_trunc(ma: u64, ea: i32, free: u64) -> u64 {
    if ma == 0 || free == 0 {
        return 0;
    }
    let (mf, ef) = u64_parts(free);
    let mut p = u128::from(ma) * u128::from(mf);
    let mut e = ea + ef;
    let bits = 128 - i32::try_from(p.leading_zeros()).unwrap_or(128);
    if bits > 53 {
        // simlint: allow(cast-truncation): bits ≤ 128, so the shift is ≤ 75
        let sh = (bits - 53) as u32;
        let rem = p & ((1u128 << sh) - 1);
        let half = 1u128 << (sh - 1);
        p >>= sh;
        if rem > half || (rem == half && p & 1 == 1) {
            p += 1; // may round up to 2^53: still exactly representable
        }
        e += sh as i32;
    }
    if e >= 0 {
        if e >= 75 {
            return u64::MAX; // p ≥ 2^52, so the value exceeds u64
        }
        let v = p << e;
        if v > u128::from(u64::MAX) {
            u64::MAX
        } else {
            v as u64
        }
    } else {
        let sh = e.unsigned_abs();
        if sh >= 128 {
            0
        } else {
            // p ≤ 2^53 after rounding, so the shifted value fits u64.
            (p >> sh) as u64
        }
    }
}

// --- the policy zoo -------------------------------------------------------

/// Choudhury–Hahne Dynamic Thresholds (the studied fleet's discipline):
/// admit while the queue's *shared* usage is strictly below
/// α·(capacity − occupancy). α is pre-decomposed into its exact
/// mantissa/exponent at construction so the per-packet path is
/// float-free yet bit-identical to the historical f64 multiply.
#[derive(Debug, Clone, Copy)]
pub struct DtAlpha {
    mant: u64,
    exp: i32,
    ecn: Bytes,
}

impl DtAlpha {
    /// Builds from the spec α (must be positive and finite) and the
    /// switch's ECN marking threshold.
    pub fn new(alpha: f64, ecn: Bytes) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "DT alpha must be positive and finite"
        );
        let (mant, exp) = f64_parts(alpha);
        DtAlpha { mant, exp, ecn }
    }

    /// The dynamic threshold for `free` bytes of pool headroom.
    pub fn threshold(&self, free: Bytes) -> Bytes {
        Bytes(mul_alpha_trunc(self.mant, self.exp, free.as_u64()))
    }
}

impl BufferPolicy for DtAlpha {
    fn admit(&self, queue: &QueueCtx, shared: &SharedCtx, _pkt: Bytes) -> AdmitDecision {
        let threshold = self.shared_threshold(shared);
        if queue.shared_used < threshold {
            AdmitDecision::Admit { threshold }
        } else {
            AdmitDecision::Reject {
                threshold,
                reason: DropReason::DynamicThresholdReject,
            }
        }
    }

    fn mark(&self, _occ_before: Bytes, occ_after: Bytes) -> bool {
        occ_after > self.ecn
    }

    fn shared_threshold(&self, shared: &SharedCtx) -> Bytes {
        self.threshold(shared.headroom())
    }
}

/// No per-queue limit: the physical pool-fit check in the switch is
/// the only gate (the §2.1 "complete sharing" baseline).
#[derive(Debug, Clone, Copy)]
pub struct CompleteSharing {
    ecn: Bytes,
}

impl CompleteSharing {
    /// Builds from the switch's ECN marking threshold.
    pub fn new(ecn: Bytes) -> Self {
        CompleteSharing { ecn }
    }
}

impl BufferPolicy for CompleteSharing {
    fn admit(&self, _queue: &QueueCtx, shared: &SharedCtx, _pkt: Bytes) -> AdmitDecision {
        AdmitDecision::Admit {
            threshold: self.shared_threshold(shared),
        }
    }

    fn mark(&self, _occ_before: Bytes, occ_after: Bytes) -> bool {
        occ_after > self.ecn
    }

    fn shared_threshold(&self, shared: &SharedCtx) -> Bytes {
        shared.headroom()
    }
}

/// Fixed per-queue slice of the shared pool (the §2.1 "static
/// partitioning" baseline): no statistical multiplexing at all.
#[derive(Debug, Clone, Copy)]
pub struct StaticPartition {
    ecn: Bytes,
}

impl StaticPartition {
    /// Builds from the switch's ECN marking threshold.
    pub fn new(ecn: Bytes) -> Self {
        StaticPartition { ecn }
    }
}

impl BufferPolicy for StaticPartition {
    fn admit(&self, queue: &QueueCtx, shared: &SharedCtx, pkt: Bytes) -> AdmitDecision {
        let threshold = self.shared_threshold(shared);
        if queue.shared_used + pkt <= threshold {
            AdmitDecision::Admit { threshold }
        } else {
            AdmitDecision::Reject {
                threshold,
                reason: DropReason::PerQueueCap,
            }
        }
    }

    fn mark(&self, _occ_before: Bytes, occ_after: Bytes) -> bool {
        occ_after > self.ecn
    }

    fn shared_threshold(&self, shared: &SharedCtx) -> Bytes {
        shared.capacity / shared.queues_per_quadrant.max(1)
    }
}

/// FB-style flexible bounds: a guaranteed floor (half the pool split
/// statically over the quadrant's queues) protects lightly-loaded
/// queues, and above it each queue's ceiling is the even split of the
/// whole pool over the *currently active* queue count — generous when
/// the quadrant is quiet, tight under contention.
#[derive(Debug, Clone, Copy)]
pub struct FlexibleBounds {
    ecn: Bytes,
}

impl FlexibleBounds {
    /// Builds from the switch's ECN marking threshold.
    pub fn new(ecn: Bytes) -> Self {
        FlexibleBounds { ecn }
    }

    /// The guaranteed per-queue floor: half the pool divided over all
    /// queues of the quadrant, so the floors can never oversubscribe
    /// the pool even with every queue active.
    pub fn floor(shared: &SharedCtx) -> Bytes {
        shared.capacity / (2 * shared.queues_per_quadrant.max(1))
    }

    /// The active-count-adaptive ceiling: the even split of the pool
    /// over the queues currently holding packets.
    pub fn ceiling(shared: &SharedCtx) -> Bytes {
        shared.capacity / shared.active_queues.max(1)
    }
}

impl BufferPolicy for FlexibleBounds {
    fn admit(&self, queue: &QueueCtx, shared: &SharedCtx, pkt: Bytes) -> AdmitDecision {
        let threshold = self.shared_threshold(shared);
        if queue.shared_used + pkt <= threshold {
            AdmitDecision::Admit { threshold }
        } else {
            AdmitDecision::Reject {
                threshold,
                reason: DropReason::FlexibleBoundsReject,
            }
        }
    }

    fn mark(&self, _occ_before: Bytes, occ_after: Bytes) -> bool {
        occ_after > self.ecn
    }

    fn shared_threshold(&self, shared: &SharedCtx) -> Bytes {
        FlexibleBounds::ceiling(shared).max(FlexibleBounds::floor(shared))
    }
}

/// BShare-style delay-driven admission: a packet is admitted while the
/// queue's estimated queueing delay — occupancy divided by the drain
/// rate — stays within the target. The byte ceiling
/// `drain·target / (8·10⁹)` is precomputed once in u128 integer math,
/// and `occ + pkt ≤ floor(x)` is exactly `occ + pkt ≤ x` for integer
/// occupancies, so the per-packet test is a single integer compare.
#[derive(Debug, Clone, Copy)]
pub struct DelayDriven {
    /// Byte ceiling equivalent to the delay target at the drain rate.
    cap: Bytes,
    /// Drain rate, kept for delay estimation in diagnostics/tests.
    drain: Bps,
    ecn: Bytes,
}

impl DelayDriven {
    /// Builds from the delay target, the assumed drain rate (both must
    /// be positive), and the switch's ECN marking threshold.
    pub fn new(target: Ns, drain: Bps, ecn: Bytes) -> Self {
        assert!(
            drain.is_positive(),
            "delay-driven drain rate must be positive"
        );
        assert!(target > Ns::ZERO, "delay-driven target must be positive");
        let cap = u128::from(target.as_nanos()) * u128::from(drain.as_u64()) / 8 / 1_000_000_000;
        let cap = if cap > u128::from(u64::MAX) {
            Bytes::MAX
        } else {
            Bytes(cap as u64)
        };
        DelayDriven { cap, drain, ecn }
    }

    /// The estimated queueing delay of `occupancy` bytes at the
    /// configured drain rate (integer ns, truncating).
    pub fn estimated_delay(&self, occupancy: Bytes) -> Ns {
        let ns =
            u128::from(occupancy.as_u64()) * 8 * 1_000_000_000 / u128::from(self.drain.as_u64());
        if ns > u128::from(u64::MAX) {
            Ns::MAX
        } else {
            Ns(ns as u64)
        }
    }
}

impl BufferPolicy for DelayDriven {
    fn admit(&self, queue: &QueueCtx, _shared: &SharedCtx, pkt: Bytes) -> AdmitDecision {
        let threshold = self.cap;
        if queue.occupancy + pkt <= threshold {
            AdmitDecision::Admit { threshold }
        } else {
            AdmitDecision::Reject {
                threshold,
                reason: DropReason::DelayTargetExceeded,
            }
        }
    }

    fn mark(&self, _occ_before: Bytes, occ_after: Bytes) -> bool {
        occ_after > self.ecn
    }

    fn shared_threshold(&self, _shared: &SharedCtx) -> Bytes {
        self.cap
    }
}

/// Enum-dispatched policy state held by the switch. No `Box<dyn>`: the
/// admission test is per-packet, and a vtable call plus heap indirection
/// has no place inside the 7 ns disabled-path budget.
#[derive(Debug, Clone, Copy)]
pub enum ActivePolicy {
    /// Dynamic Thresholds.
    Dt(DtAlpha),
    /// Complete sharing.
    Cs(CompleteSharing),
    /// Static partitioning.
    Sp(StaticPartition),
    /// Flexible bounds.
    Fb(FlexibleBounds),
    /// Delay-driven.
    Delay(DelayDriven),
}

impl ActivePolicy {
    /// Instantiates the runtime policy for a spec, copying the switch's
    /// ECN threshold into the policy's `mark` hook.
    pub fn from_spec(spec: &BufferPolicySpec, ecn: Bytes) -> ActivePolicy {
        match *spec {
            BufferPolicySpec::DtAlpha { alpha } => ActivePolicy::Dt(DtAlpha::new(alpha, ecn)),
            BufferPolicySpec::CompleteSharing => ActivePolicy::Cs(CompleteSharing::new(ecn)),
            BufferPolicySpec::StaticPartition => ActivePolicy::Sp(StaticPartition::new(ecn)),
            BufferPolicySpec::FlexibleBounds => ActivePolicy::Fb(FlexibleBounds::new(ecn)),
            BufferPolicySpec::DelayDriven { target, drain } => {
                ActivePolicy::Delay(DelayDriven::new(target, drain, ecn))
            }
        }
    }

    /// Whether [`SharedCtx::active_queues`] must be populated for this
    /// policy (lets the switch skip the O(queues) scan otherwise).
    pub fn needs_active_queues(&self) -> bool {
        matches!(self, ActivePolicy::Fb(_))
    }

    /// Shared-pool admission test (see [`BufferPolicy::admit`]).
    pub fn admit(&self, queue: &QueueCtx, shared: &SharedCtx, pkt: Bytes) -> AdmitDecision {
        match self {
            ActivePolicy::Dt(p) => DtAlpha::admit(p, queue, shared, pkt),
            ActivePolicy::Cs(p) => CompleteSharing::admit(p, queue, shared, pkt),
            ActivePolicy::Sp(p) => StaticPartition::admit(p, queue, shared, pkt),
            ActivePolicy::Fb(p) => FlexibleBounds::admit(p, queue, shared, pkt),
            ActivePolicy::Delay(p) => DelayDriven::admit(p, queue, shared, pkt),
        }
    }

    /// ECN-mark decision (see [`BufferPolicy::mark`]).
    pub fn mark(&self, occ_before: Bytes, occ_after: Bytes) -> bool {
        match self {
            ActivePolicy::Dt(p) => DtAlpha::mark(p, occ_before, occ_after),
            ActivePolicy::Cs(p) => CompleteSharing::mark(p, occ_before, occ_after),
            ActivePolicy::Sp(p) => StaticPartition::mark(p, occ_before, occ_after),
            ActivePolicy::Fb(p) => FlexibleBounds::mark(p, occ_before, occ_after),
            ActivePolicy::Delay(p) => DelayDriven::mark(p, occ_before, occ_after),
        }
    }

    /// Dequeue hook (see [`BufferPolicy::on_dequeue`]).
    pub fn on_dequeue(&mut self, queue: &QueueCtx, shared: &SharedCtx, freed: Bytes) {
        match self {
            ActivePolicy::Dt(p) => DtAlpha::on_dequeue(p, queue, shared, freed),
            ActivePolicy::Cs(p) => CompleteSharing::on_dequeue(p, queue, shared, freed),
            ActivePolicy::Sp(p) => StaticPartition::on_dequeue(p, queue, shared, freed),
            ActivePolicy::Fb(p) => FlexibleBounds::on_dequeue(p, queue, shared, freed),
            ActivePolicy::Delay(p) => DelayDriven::on_dequeue(p, queue, shared, freed),
        }
    }

    /// Current governing threshold for a quadrant (probes, forensics).
    pub fn shared_threshold(&self, shared: &SharedCtx) -> Bytes {
        match self {
            ActivePolicy::Dt(p) => DtAlpha::shared_threshold(p, shared),
            ActivePolicy::Cs(p) => CompleteSharing::shared_threshold(p, shared),
            ActivePolicy::Sp(p) => StaticPartition::shared_threshold(p, shared),
            ActivePolicy::Fb(p) => FlexibleBounds::shared_threshold(p, shared),
            ActivePolicy::Delay(p) => DelayDriven::shared_threshold(p, shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn sctx(occ: u64, cap: u64, active: u64, qpq: u64) -> SharedCtx {
        SharedCtx {
            occupancy: Bytes(occ),
            capacity: Bytes(cap),
            active_queues: active,
            queues_per_quadrant: qpq,
        }
    }

    fn qctx(shared_used: u64, occupancy: u64) -> QueueCtx {
        QueueCtx {
            shared_used: Bytes(shared_used),
            occupancy: Bytes(occupancy),
        }
    }

    #[test]
    fn dt_integer_threshold_matches_the_f64_formula_exactly() {
        // The bit-identity keystone: the u128 emulation must reproduce
        // `(alpha * free as f64) as u64` for every α the workspace uses
        // (sweep values, tuner outputs like 4/3) and adversarial ones,
        // across hand-picked and randomized free values.
        let alphas = [
            0.25,
            0.5,
            1.0,
            2.0,
            4.0,
            4.0 / 3.0,
            4.0 / 5.0,
            4.0 / 7.0,
            0.1,
            0.3333333333333333,
            1.5,
            2.7,
            1e-3,
            1e6,
            f64::from_bits(0x3FF0_0000_0000_0001), // 1.0 + ulp
        ];
        let mut frees: Vec<u64> = vec![
            0,
            1,
            2,
            3,
            1499,
            1500,
            99_999,
            100_000,
            3_600_000,
            4 << 20,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1,
            u64::MAX / 3,
            u64::MAX,
        ];
        let mut rng = SimRng::new(42);
        for _ in 0..2000 {
            frees.push(rng.next_u64() >> (rng.next_u64() % 40));
        }
        for &alpha in &alphas {
            let (ma, ea) = f64_parts(alpha);
            for &free in &frees {
                let want = (alpha * free as f64) as u64;
                let got = mul_alpha_trunc(ma, ea, free);
                assert_eq!(
                    got, want,
                    "alpha {alpha:?} ({ma:#x}·2^{ea}) free {free}: integer {got} != f64 {want}"
                );
            }
        }
    }

    #[test]
    fn dt_admits_strictly_below_threshold_and_rejects_at_it() {
        let dt = DtAlpha::new(1.0, Bytes(20_000));
        let shared = sctx(0, 100_000, 0, 4);
        // threshold = 1.0 · 100_000; usage strictly below admits...
        assert!(dt
            .admit(&qctx(99_999, 99_999), &shared, Bytes(1500))
            .admitted());
        // ...usage exactly at the threshold does not (strict `<`).
        let at = dt.admit(&qctx(100_000, 100_000), &shared, Bytes(1500));
        assert!(!at.admitted());
        assert_eq!(at.threshold(), Bytes(100_000));
        assert_eq!(
            at.reason_or(DropReason::SharedBufferFull),
            DropReason::DynamicThresholdReject
        );
    }

    #[test]
    fn dt_threshold_shrinks_with_pool_occupancy_and_is_zero_when_full() {
        let dt = DtAlpha::new(0.5, Bytes(20_000));
        assert_eq!(dt.shared_threshold(&sctx(0, 100_000, 0, 4)), Bytes(50_000));
        assert_eq!(
            dt.shared_threshold(&sctx(60_000, 100_000, 0, 4)),
            Bytes(20_000)
        );
        assert_eq!(
            dt.shared_threshold(&sctx(100_000, 100_000, 0, 4)),
            Bytes::ZERO
        );
    }

    #[test]
    fn complete_sharing_always_admits_and_reports_headroom() {
        let cs = CompleteSharing::new(Bytes(20_000));
        let d = cs.admit(
            &qctx(1 << 40, 1 << 40),
            &sctx(99_000, 100_000, 9, 4),
            Bytes(64_000),
        );
        assert!(d.admitted());
        assert_eq!(d.threshold(), Bytes(1000));
    }

    #[test]
    fn static_partition_caps_at_the_slice_inclusive() {
        let sp = StaticPartition::new(Bytes(20_000));
        let shared = sctx(0, 100_000, 0, 4);
        // slice = 25_000; an exact-threshold packet is admitted (≤)...
        assert!(sp
            .admit(&qctx(23_500, 23_500), &shared, Bytes(1500))
            .admitted());
        // ...one byte past the slice is not.
        let over = sp.admit(&qctx(23_501, 23_501), &shared, Bytes(1500));
        assert!(!over.admitted());
        assert_eq!(
            over.reason_or(DropReason::SharedBufferFull),
            DropReason::PerQueueCap
        );
    }

    #[test]
    fn flexible_bounds_ceiling_adapts_to_active_queues() {
        let fb = FlexibleBounds::new(Bytes(20_000));
        // Quiet quadrant: the lone active queue may take the whole pool.
        assert_eq!(fb.shared_threshold(&sctx(0, 100_000, 1, 4)), Bytes(100_000));
        // Contended: the even split shrinks the ceiling...
        assert_eq!(fb.shared_threshold(&sctx(0, 100_000, 4, 4)), Bytes(25_000));
        // ...but never below the guaranteed floor (cap / 2·qpq).
        assert_eq!(
            fb.shared_threshold(&sctx(0, 100_000, 100, 4)),
            Bytes(12_500)
        );
    }

    #[test]
    fn flexible_bounds_rejects_with_its_own_reason() {
        let fb = FlexibleBounds::new(Bytes(20_000));
        let shared = sctx(80_000, 100_000, 2, 4); // ceiling = 50_000
        let d = fb.admit(&qctx(49_000, 49_000), &shared, Bytes(1500));
        assert!(!d.admitted());
        assert_eq!(
            d.reason_or(DropReason::SharedBufferFull),
            DropReason::FlexibleBoundsReject
        );
        assert!(fb
            .admit(&qctx(48_500, 48_500), &shared, Bytes(1500))
            .admitted());
    }

    #[test]
    fn delay_driven_cap_is_exact_integer_ns_math() {
        // 500 µs at 12.5 Gb/s = 781_250 bytes.
        let dd = DelayDriven::new(Ns::from_micros(500), Bps(12_500_000_000), Bytes(20_000));
        let shared = sctx(0, 4 << 20, 0, 4);
        assert_eq!(dd.shared_threshold(&shared), Bytes(781_250));
        // An exact-cap fill is admitted; one byte more is refused.
        assert!(dd.admit(&qctx(0, 779_750), &shared, Bytes(1500)).admitted());
        let over = dd.admit(&qctx(0, 779_751), &shared, Bytes(1500));
        assert!(!over.admitted());
        assert_eq!(
            over.reason_or(DropReason::SharedBufferFull),
            DropReason::DelayTargetExceeded
        );
        // Delay estimation round-trips the cap to the target.
        assert_eq!(dd.estimated_delay(Bytes(781_250)), Ns::from_micros(500));
    }

    #[test]
    fn empty_switch_admits_under_every_policy() {
        let shared = sctx(0, 100_000, 1, 4);
        let q = qctx(0, 0);
        let pkt = Bytes(1500);
        for kind in PolicyKind::ALL {
            let policy = ActivePolicy::from_spec(&kind.spec_with_alpha(1.0), Bytes(20_000));
            assert!(
                policy.admit(&q, &shared, pkt).admitted(),
                "{} refused a packet on an empty switch",
                kind.label()
            );
        }
    }

    #[test]
    fn full_pool_thresholds_floor_out_but_never_panic() {
        // Physical pool exhaustion is the switch's job, but policies
        // must stay total when occupancy equals capacity.
        let shared = sctx(100_000, 100_000, 4, 4);
        let q = qctx(25_000, 25_500);
        for kind in PolicyKind::ALL {
            let policy = ActivePolicy::from_spec(&kind.spec_with_alpha(1.0), Bytes(20_000));
            let d = policy.admit(&q, &shared, Bytes(1500));
            let _ = d.threshold();
        }
    }

    #[test]
    fn mark_fires_strictly_above_the_ecn_threshold_for_every_policy() {
        for kind in PolicyKind::ALL {
            let policy = ActivePolicy::from_spec(&kind.spec_with_alpha(1.0), Bytes(20_000));
            assert!(!policy.mark(Bytes(0), Bytes(20_000)), "{}", kind.label());
            assert!(policy.mark(Bytes(0), Bytes(20_001)), "{}", kind.label());
        }
    }

    #[test]
    fn kind_codes_and_labels_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_code(kind.code()), Some(kind));
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.spec_with_alpha(2.0).kind(), kind);
        }
        assert_eq!(PolicyKind::from_code(99), None);
        assert_eq!(PolicyKind::parse("bogus"), None);
    }
}
