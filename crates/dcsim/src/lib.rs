//! # ms-dcsim — packet-level data center rack simulator
//!
//! This crate is the substrate on which the Millisampler reproduction runs:
//! a deterministic, discrete-event, packet-metadata-level simulator of a data
//! center rack as described in §3 of *"A Microscopic View of Bursts, Buffer
//! Contention, and Loss in Data Centers"* (IMC 2022).
//!
//! It provides:
//!
//! * [`time::Ns`] — nanosecond simulation time,
//! * [`engine::EventQueue`] — a deterministic event queue with FIFO
//!   tie-breaking for simultaneous events,
//! * [`packet::Packet`] — segment metadata (no payload bytes are simulated),
//! * [`link::Link`] — rate + propagation-delay links with serialization,
//! * [`switch::SharedBufferSwitch`] — a shared-memory ToR switch with
//!   pluggable buffer sharing ([`policy::BufferPolicy`]: Choudhury–Hahne
//!   **Dynamic Threshold** by default, plus FB-style flexible bounds and
//!   BShare-style delay-driven admission), buffer quadrants, per-queue
//!   dedicated reserves, a static ECN marking threshold, and
//!   per-queue/1-minute discard counters,
//! * [`host::Host`] — server model with a multi-queue NIC, RSS-style flow
//!   steering across simulated CPUs, and a host clock with injectable skew,
//! * [`fault`] — fault injection (random drop, NIC stalls) in the style of
//!   smoltcp's example fault injectors,
//! * [`topology::RackConfig`] — the numeric rack configuration from §3 of
//!   the paper (12.5 Gbps server links, 16 MB buffer in four 4 MB quadrants,
//!   ~3.6 MB shared per quadrant, α = 1, 120 KB ECN threshold).
//!
//! The simulator is *sans-io* in spirit: this crate owns no main loop.
//! Higher layers (`ms-transport`, `ms-workload`) pull events from the queue
//! and drive the network objects explicitly, which keeps every component
//! independently testable and the whole simulation bit-for-bit deterministic
//! for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod host;
pub mod link;
pub mod packet;
pub mod pcap;
pub mod policy;
pub mod profile;
pub mod rng;
pub mod switch;
pub mod time;
pub mod topology;

pub use engine::EventQueue;
pub use host::{Host, HostId};
pub use link::Link;
/// Re-exported from `ms-telemetry`: the drop taxonomy shared by
/// [`EnqueueOutcome`] and the trace bus, and the shared telemetry handle.
pub use ms_telemetry::{DropReason, SharedTelemetry, TraceEvent};
pub use ms_units::{Bps, Bytes};
pub use packet::{Direction, EcnCodepoint, FlowId, Packet, PacketKind};
pub use policy::{
    ActivePolicy, AdmitDecision, BufferPolicy, BufferPolicySpec, CompleteSharing, DelayDriven,
    DtAlpha, FlexibleBounds, PolicyKind, QueueCtx, SharedCtx, StaticPartition,
};
pub use profile::EngineProfile;
pub use rng::SimRng;
pub use switch::{EnqueueOutcome, SharedBufferSwitch, SwitchConfig};
pub use time::Ns;
pub use topology::RackConfig;
