//! Discrete-event engine.
//!
//! [`EventQueue`] is a priority queue of `(time, event)` pairs with two
//! guarantees the rest of the system depends on:
//!
//! 1. **Determinism** — events scheduled for the same instant pop in the
//!    order they were pushed (FIFO tie-breaking via a monotonically
//!    increasing sequence number). `BinaryHeap` alone would pop equal-time
//!    events in an arbitrary (heap-shape-dependent) order, which would make
//!    packet interleavings depend on allocation history.
//! 2. **Monotonic time** — popping returns events in non-decreasing time
//!    order, and scheduling into the past is a logic error that panics in
//!    debug builds (and is clamped to `now` in release builds, so a
//!    mis-rounded timer cannot time-travel).
//!
//! The queue is generic over the event payload so each layer of the stack
//! can define its own event enum; timer *cancellation* is handled by the
//! layers themselves using generation counters (a cancelled timer is simply
//! ignored when popped), which is both simpler and faster than tombstoning
//! inside the heap.

use crate::time::Ns;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by `(time, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: Ns,
    seq: u64,
}

/// A deterministic discrete-event queue.
///
/// ```
/// use ms_dcsim::{EventQueue, Ns};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(Ns::from_micros(5), "b");
/// q.schedule(Ns::from_micros(1), "a");
/// q.schedule(Ns::from_micros(5), "c"); // same time as "b": FIFO order
///
/// assert_eq!(q.pop(), Some((Ns::from_micros(1), "a")));
/// assert_eq!(q.pop(), Some((Ns::from_micros(5), "b")));
/// assert_eq!(q.pop(), Some((Ns::from_micros(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, EventSlot<E>)>>,
    next_seq: u64,
    now: Ns,
    popped: u64,
    depth_high_water: usize,
}

/// Wrapper so the heap only compares keys, never payloads (payloads need no
/// `Ord`, and comparing them would break FIFO semantics anyway).
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Ns::ZERO,
            popped: 0,
            depth_high_water: 0,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Total events popped so far; used for event budgets and stats.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending-event count — how deep the heap has ever
    /// grown. Exported as a telemetry gauge to size event budgets.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling before `now` is a logic error (panics in debug builds); in
    /// release builds the event is clamped to `now` so the simulation can
    /// only ever lose sub-nanosecond precision, never causality.
    pub fn schedule(&mut self, at: Ns, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event at {at} before now {}",
            self.now
        );
        let at = at.max(self.now);
        let key = Key {
            at,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse((key, EventSlot(event))));
        self.depth_high_water = self.depth_high_water.max(self.heap.len());
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, delay: Ns, event: E) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, event);
    }

    /// Pops the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Ns, E)> {
        let Reverse((key, EventSlot(event))) = self.heap.pop()?;
        debug_assert!(key.at >= self.now, "event queue went backwards");
        self.now = key.at;
        self.popped += 1;
        Some((key.at, event))
    }

    /// Pops the next event only if it is at or before `deadline`.
    pub fn pop_until(&mut self, deadline: Ns) -> Option<(Ns, E)> {
        match self.heap.peek() {
            Some(Reverse((key, _))) if key.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Ns> {
        self.heap.peek().map(|Reverse((key, _))| key.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Ns(30), 3);
        q.schedule(Ns(10), 1);
        q.schedule(Ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Ns(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Ns(5), ());
        q.schedule(Ns(9), ());
        assert_eq!(q.now(), Ns::ZERO);
        q.pop();
        assert_eq!(q.now(), Ns(5));
        q.pop();
        assert_eq!(q.now(), Ns(9));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Ns(100), "first");
        q.pop();
        q.schedule_in(Ns(50), "second");
        assert_eq!(q.pop(), Some((Ns(150), "second")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Ns(10), "a");
        q.schedule(Ns(20), "b");
        assert_eq!(q.pop_until(Ns(15)), Some((Ns(10), "a")));
        assert_eq!(q.pop_until(Ns(15)), None);
        assert_eq!(q.pop_until(Ns(25)), Some((Ns(20), "b")));
    }

    #[test]
    #[should_panic(expected = "before now")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Ns(100), ());
        q.pop();
        q.schedule(Ns(50), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_monotonic() {
        let mut q = EventQueue::new();
        let mut last = Ns::ZERO;
        q.schedule(Ns(1), 0u64);
        let mut produced = 0u64;
        while let Some((t, n)) = q.pop() {
            assert!(t >= last);
            last = t;
            if produced < 1000 {
                produced += 1;
                // Schedule two children with pseudo-random-ish offsets.
                q.schedule(t + Ns(1 + (n * 7919) % 13), produced);
            }
        }
        assert_eq!(q.events_processed(), 1001);
    }
}
