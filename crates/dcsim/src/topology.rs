//! Rack topology configuration.
//!
//! [`RackConfig`] gathers the numeric parameters of the studied deployment
//! (§3 of the paper) in one place, with the paper's values as defaults, so
//! experiments and tests never scatter magic numbers.

use crate::switch::SwitchConfig;
use crate::time::Ns;
use ms_units::{Bps, Bytes};

/// Configuration of one simulated rack and its attachment to the fabric.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Servers in the rack (each with its own ToR egress queue).
    pub num_servers: usize,
    /// Simulated CPUs per server (per-CPU Millisampler counters).
    pub cpus_per_server: usize,
    /// Server link rate. The studied type: 50 Gbps NIC shared by
    /// 4 servers → 12.5 Gbps per server.
    pub server_link_bps: Bps,
    /// Server link propagation delay.
    pub server_link_delay: Ns,
    /// Remote (fabric-side) sender NIC rate.
    pub remote_nic_bps: Bps,
    /// One-way fabric latency between a remote sender and the ToR.
    pub fabric_delay: Ns,
    /// MSS used by transports, bytes on the wire per full segment.
    pub mss: u32,
    /// ToR switch configuration.
    pub switch: SwitchConfig,
}

impl RackConfig {
    /// The §3 deployment: `num_servers` at 12.5 Gbps each, 4 CPUs per
    /// server, 25 Gbps remote senders ~20 µs across the fabric, and the
    /// 16 MB / α=1 / 120 KB-ECN ToR.
    pub fn meta_defaults(num_servers: usize) -> Self {
        RackConfig {
            num_servers,
            cpus_per_server: 4,
            server_link_bps: Bps(12_500_000_000),
            server_link_delay: Ns::from_micros(1),
            remote_nic_bps: Bps(25_000_000_000),
            fabric_delay: Ns::from_micros(20),
            mss: 1500,
            switch: SwitchConfig::meta_tor(num_servers),
        }
    }

    /// The base round-trip time between a remote sender and a rack server
    /// when queues are empty: two fabric traversals, two server-link
    /// propagation delays, plus one full-size serialization at each hop.
    pub fn base_rtt(&self) -> Ns {
        let mss = Bytes(u64::from(self.mss));
        let data_tx =
            Ns::tx_time(mss, self.server_link_bps) + Ns::tx_time(mss, self.remote_nic_bps);
        let ack_tx = Ns::tx_time(Bytes(64), self.server_link_bps);
        self.fabric_delay * 2 + self.server_link_delay * 2 + data_tx + ack_tx
    }

    /// Bytes that constitute 50 % of server line rate over `interval` —
    /// the paper's burst threshold (§5: "any consecutive set of one or more
    /// sample data points that exceeds 50% of line rate").
    pub fn burst_threshold_bytes(&self, interval: Ns) -> Bytes {
        interval.bytes_at_rate(self.server_link_bps) / 2
    }

    /// How many bytes one server link drains per 1 ms — the scale factor
    /// that makes "the switch buffers about 1 ms worth of packets per
    /// queue" (§5) concrete.
    pub fn bytes_per_ms(&self) -> Bytes {
        Ns::from_millis(1).bytes_at_rate(self.server_link_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_defaults_match_paper() {
        let cfg = RackConfig::meta_defaults(32);
        assert_eq!(cfg.server_link_bps, Bps(12_500_000_000));
        assert_eq!(
            cfg.switch.policy,
            crate::policy::BufferPolicySpec::DtAlpha { alpha: 1.0 }
        );
        assert_eq!(cfg.switch.ecn_threshold, Bytes::from_kib(120));
        assert_eq!(cfg.switch.quadrant_bytes, Bytes::from_mib(4));
    }

    #[test]
    fn base_rtt_is_tens_of_microseconds() {
        let cfg = RackConfig::meta_defaults(32);
        let rtt = cfg.base_rtt();
        assert!(
            rtt >= Ns::from_micros(40) && rtt <= Ns::from_micros(100),
            "rtt {rtt}"
        );
    }

    #[test]
    fn one_ms_of_buffer_close_to_max_queue_share() {
        // §5: switch buffers ~1ms/queue. Max per-queue share at α=1 is
        // ~1.8MB; 1ms at 12.5Gbps is ~1.56MB: same order, slightly less.
        let cfg = RackConfig::meta_defaults(32);
        let per_ms = cfg.bytes_per_ms().as_u64();
        let max_share = (cfg.switch.shared_capacity() / 2).as_u64();
        assert!(per_ms as f64 / max_share as f64 > 0.7);
        assert!((per_ms as f64 / max_share as f64) < 1.3);
    }

    #[test]
    fn burst_threshold_at_1ms() {
        let cfg = RackConfig::meta_defaults(32);
        // 12.5 Gbps → 1.5625 MB/ms → threshold 781250 B.
        assert_eq!(
            cfg.burst_threshold_bytes(Ns::from_millis(1)),
            Bytes(781_250)
        );
    }
}
