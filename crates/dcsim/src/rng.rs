//! Deterministic random number generation for the simulator.
//!
//! Every stochastic decision in the simulation (workload arrivals, flow
//! sizes, fault injection, clock skew) draws from a [`SimRng`], a SplitMix64
//! generator. SplitMix64 is tiny, fast, has no dependencies, passes BigCrush
//! on its intended use, and — most importantly here — makes it trivial to
//! derive independent, reproducible sub-streams (per rack, per server, per
//! task) from a single experiment seed via [`SimRng::fork`].
//!
//! We intentionally do not use the `rand` crate in the substrate so that
//! determinism does not hinge on an external crate's stream stability across
//! versions; the workload crate uses `rand` distributions *seeded through*
//! this type.

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bias is < 2^-64 * n which is immaterial for workload sampling.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival sampling in workloads.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// A bounded Pareto sample (shape `alpha`, range `[lo, hi]`).
    ///
    /// Flow sizes in data centers are heavy-tailed; bounded Pareto keeps the
    /// tail while guaranteeing the sampler terminates with sane values.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.next_f64().clamp(1e-12, 1.0 - 1e-12);
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// The current internal state. `SimRng::new(state)` resumes the stream
    /// exactly here — this is how declarative scenario specs capture a
    /// forked generator stream as a plain seed.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derives an independent child generator. Children with distinct labels
    /// produce decorrelated streams; the parent advances once.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label through one extra SplitMix round so that fork(0) and
        // fork(1) differ in every bit, not just the low ones.
        let base = self.next_u64();
        let mut z = base ^ label.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        SimRng::new(z ^ (z >> 32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            let v = r.bounded_pareto(1.2, 1_000.0, 1_000_000.0);
            assert!((1_000.0..=1_000_001.0).contains(&v), "got {v}");
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::new(5);
        let mut c0 = root.fork(0);
        let mut c1 = root.fork(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(17);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }
}
