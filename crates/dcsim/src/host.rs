//! Server (host) model.
//!
//! A [`Host`] is where Millisampler attaches. It models the parts of a
//! server that matter to host-side sampling:
//!
//! * a NIC uplink toward the ToR (for ACKs and any egress data) — the
//!   *downlink* (ToR → host) is owned by the switch side;
//! * multiple CPUs with RSS-style steering: each flow is hashed to the CPU
//!   that will process its soft-irqs, which is the CPU whose per-CPU
//!   Millisampler counters the packet increments (§4.1 of the paper
//!   explains why the filter uses per-CPU variables);
//! * a host **clock** with a configurable fixed offset from simulation time,
//!   modeling NTP error across hosts. SyncMillisampler's alignment logic
//!   (§4.4–4.5) must work on timestamps from these clocks, not the
//!   simulator's global clock.

use crate::link::Link;
use crate::packet::FlowId;
use crate::time::Ns;
use ms_units::Bps;

/// Index of a host within its rack (also its ToR egress queue index).
pub type HostId = u32;

/// Per-host cumulative counters (NIC-level, not sampler-level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Bytes received from the ToR.
    pub rx_bytes: u64,
    /// Packets received from the ToR.
    pub rx_packets: u64,
    /// Bytes sent toward the ToR.
    pub tx_bytes: u64,
    /// Packets sent toward the ToR.
    pub tx_packets: u64,
}

/// A server in the rack.
#[derive(Debug)]
pub struct Host {
    id: HostId,
    num_cpus: usize,
    /// Signed clock offset: host clock = sim time + offset.
    clock_offset_ns: i64,
    /// NIC uplink toward the ToR.
    uplink: Link,
    stats: HostStats,
    /// Optional NIC stall window: while `now` is inside, the "kernel" does
    /// not process interrupts — packets arrive at the NIC but the tc filter
    /// never sees them (models the locking bugs described in §4.6).
    stall: Option<(Ns, Ns)>,
}

impl Host {
    /// Creates a host. `uplink_rate` is the server link rate toward the
    /// ToR (12.5 Gbps for the studied server type).
    pub fn new(id: HostId, num_cpus: usize, uplink_rate: Bps, uplink_delay: Ns) -> Self {
        assert!(num_cpus > 0, "host needs at least one CPU");
        Host {
            id,
            num_cpus,
            clock_offset_ns: 0,
            uplink: Link::new(uplink_rate, uplink_delay),
            stats: HostStats::default(),
            stall: None,
        }
    }

    /// The host id (== ToR egress queue index).
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Number of simulated CPUs.
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// Sets the host clock offset (positive = clock runs ahead of sim time).
    pub fn set_clock_offset(&mut self, offset_ns: i64) {
        self.clock_offset_ns = offset_ns;
    }

    /// The host clock offset.
    pub fn clock_offset(&self) -> i64 {
        self.clock_offset_ns
    }

    /// Reads the host's local clock at simulation time `now`.
    ///
    /// Saturates at zero: a large negative offset near sim start cannot
    /// produce a pre-epoch timestamp.
    pub fn local_clock(&self, now: Ns) -> Ns {
        let t = now.as_nanos() as i64 + self.clock_offset_ns;
        Ns(t.max(0) as u64)
    }

    /// The CPU that processes a flow (RSS hash of the flow id).
    pub fn rss_cpu(&self, flow: FlowId) -> usize {
        (flow.hash64() % self.num_cpus as u64) as usize
    }

    /// Mutable access to the NIC uplink (for transmitting ACKs/data).
    pub fn uplink_mut(&mut self) -> &mut Link {
        &mut self.uplink
    }

    /// The NIC uplink.
    pub fn uplink(&self) -> &Link {
        &self.uplink
    }

    /// Records reception of a packet (NIC counters).
    pub fn note_rx(&mut self, bytes: u32) {
        self.stats.rx_bytes += bytes as u64;
        self.stats.rx_packets += 1;
    }

    /// Records transmission of a packet (NIC counters).
    pub fn note_tx(&mut self, bytes: u32) {
        self.stats.tx_bytes += bytes as u64;
        self.stats.tx_packets += 1;
    }

    /// Cumulative NIC counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Installs a NIC/kernel stall during `[from, to)` (fault injection).
    pub fn set_stall(&mut self, from: Ns, to: Ns) {
        assert!(from < to, "stall window must be non-empty");
        self.stall = Some((from, to));
    }

    /// Whether the kernel is stalled (not processing interrupts) at `now`.
    pub fn is_stalled(&self, now: Ns) -> bool {
        matches!(self.stall, Some((from, to)) if now >= from && now < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_offset_applies() {
        let mut h = Host::new(0, 4, Bps(12_500_000_000), Ns::from_micros(1));
        h.set_clock_offset(500_000); // +0.5ms
        assert_eq!(h.local_clock(Ns::from_millis(1)), Ns(1_500_000));
        h.set_clock_offset(-500_000);
        assert_eq!(h.local_clock(Ns::from_millis(1)), Ns(500_000));
    }

    #[test]
    fn negative_clock_saturates_at_zero() {
        let mut h = Host::new(0, 4, Bps(1_000_000_000), Ns::ZERO);
        h.set_clock_offset(-1_000_000);
        assert_eq!(h.local_clock(Ns(100)), Ns::ZERO);
    }

    #[test]
    fn rss_spreads_flows_over_cpus() {
        let h = Host::new(0, 4, Bps(1_000_000_000), Ns::ZERO);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[h.rss_cpu(FlowId(i))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rss_is_stable_per_flow() {
        let h = Host::new(0, 4, Bps(1_000_000_000), Ns::ZERO);
        let cpu = h.rss_cpu(FlowId(42));
        for _ in 0..10 {
            assert_eq!(h.rss_cpu(FlowId(42)), cpu);
        }
    }

    #[test]
    fn stall_window_is_half_open() {
        let mut h = Host::new(0, 1, Bps(1_000_000_000), Ns::ZERO);
        h.set_stall(Ns(100), Ns(200));
        assert!(!h.is_stalled(Ns(99)));
        assert!(h.is_stalled(Ns(100)));
        assert!(h.is_stalled(Ns(199)));
        assert!(!h.is_stalled(Ns(200)));
    }

    #[test]
    fn nic_counters_accumulate() {
        let mut h = Host::new(0, 1, Bps(1_000_000_000), Ns::ZERO);
        h.note_rx(1500);
        h.note_rx(1500);
        h.note_tx(64);
        assert_eq!(
            h.stats(),
            HostStats {
                rx_bytes: 3000,
                rx_packets: 2,
                tx_bytes: 64,
                tx_packets: 1
            }
        );
    }
}
