//! Simulation time.
//!
//! All simulation time is kept in integer nanoseconds ([`Ns`]). Integer time
//! makes event ordering exact and the simulation reproducible: there is no
//! floating-point drift, and two events scheduled for "the same time" compare
//! equal rather than almost-equal.

use ms_units::{Bps, Bytes};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time, or a duration, in nanoseconds.
///
/// `Ns` is deliberately a single type for both instants and durations —
/// the simulator's arithmetic is simple enough that the instant/duration
/// distinction adds more ceremony than safety, and this mirrors how the
/// paper's eBPF filter works with raw `ktime` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero time — the start of every simulation.
    pub const ZERO: Ns = Ns(0);
    /// The largest representable time; used as an "infinite" deadline.
    pub const MAX: Ns = Ns(u64::MAX);

    /// Constructs from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Ns(ns)
    }

    /// Constructs from whole microseconds, saturating at [`Ns::MAX`].
    pub const fn from_micros(us: u64) -> Self {
        Ns(us.saturating_mul(1_000))
    }

    /// Constructs from whole milliseconds, saturating at [`Ns::MAX`].
    pub const fn from_millis(ms: u64) -> Self {
        Ns(ms.saturating_mul(1_000_000))
    }

    /// Constructs from whole seconds, saturating at [`Ns::MAX`].
    pub const fn from_secs(s: u64) -> Self {
        Ns(s.saturating_mul(1_000_000_000))
    }

    /// Constructs from whole microseconds, `None` if the value does not
    /// fit in `u64` nanoseconds. Use for externally supplied durations
    /// (scenario decode paths) where saturation would mask bad input.
    pub const fn checked_from_micros(us: u64) -> Option<Ns> {
        match us.checked_mul(1_000) {
            Some(v) => Some(Ns(v)),
            None => None,
        }
    }

    /// Checked variant of [`Ns::from_millis`]; see [`Ns::checked_from_micros`].
    pub const fn checked_from_millis(ms: u64) -> Option<Ns> {
        match ms.checked_mul(1_000_000) {
            Some(v) => Some(Ns(v)),
            None => None,
        }
    }

    /// Checked variant of [`Ns::from_secs`]; see [`Ns::checked_from_micros`].
    pub const fn checked_from_secs(s: u64) -> Option<Ns> {
        match s.checked_mul(1_000_000_000) {
            Some(v) => Some(Ns(v)),
            None => None,
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float, for reporting only (never for event math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    pub const fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Ns) -> Option<Ns> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Ns(v)),
            None => None,
        }
    }

    /// The transmission (serialization) time of `bytes` at `rate`.
    ///
    /// Rounds up to the next nanosecond so that back-to-back packets never
    /// serialize faster than line rate due to truncation.
    pub fn tx_time(bytes: Bytes, rate: Bps) -> Ns {
        debug_assert!(rate.is_positive(), "link rate must be positive");
        let bits = bytes.as_u64() as u128 * 8 * 1_000_000_000;
        Ns(bits.div_ceil(rate.as_u64() as u128) as u64)
    }

    /// How many bytes a link at `rate` drains in this duration
    /// (truncating).
    pub fn bytes_at_rate(self, rate: Bps) -> Bytes {
        Bytes((self.0 as u128 * rate.as_u64() as u128 / 8 / 1_000_000_000) as u64)
    }

    /// `self` as a multiple of `interval`, i.e. which sampling bucket this
    /// instant falls into given a bucket width. This is exactly the bucket
    /// computation the Millisampler tc filter performs per packet.
    pub const fn bucket_index(self, interval: Ns) -> u64 {
        self.0 / interval.0
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Ns::from_secs(2), Ns::from_millis(2000));
        assert_eq!(Ns::from_millis(1), Ns::from_micros(1000));
        assert_eq!(Ns::from_micros(1), Ns::from_nanos(1000));
    }

    #[test]
    fn tx_time_at_line_rates() {
        // 1500 B at 12.5 Gbps = 960 ns exactly.
        assert_eq!(Ns::tx_time(Bytes(1500), Bps(12_500_000_000)), Ns(960));
        // 1500 B at 100 Gbps = 120 ns exactly.
        assert_eq!(Ns::tx_time(Bytes(1500), Bps::from_gbps(100)), Ns(120));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> must round up to a whole ns above 2.66e9.
        let t = Ns::tx_time(Bytes(1), Bps(3));
        assert_eq!(t, Ns(2_666_666_667));
    }

    #[test]
    fn bytes_at_rate_inverts_tx_time_approximately() {
        let rate = Bps(12_500_000_000);
        let t = Ns::tx_time(Bytes(1_000_000), rate);
        let b = t.bytes_at_rate(rate).as_u64();
        assert!((1_000_000..=1_000_001).contains(&b), "got {b}");
    }

    #[test]
    fn checked_constructors_reject_overflow() {
        assert_eq!(Ns::checked_from_micros(7), Some(Ns(7_000)));
        assert_eq!(Ns::checked_from_micros(u64::MAX / 999), None);
        assert_eq!(Ns::checked_from_millis(4), Some(Ns(4_000_000)));
        assert_eq!(Ns::checked_from_millis(u64::MAX / 999_999), None);
        assert_eq!(Ns::checked_from_secs(2), Some(Ns(2_000_000_000)));
        assert_eq!(Ns::checked_from_secs(u64::MAX / 999_999_999), None);
        // The saturating constructors clamp instead.
        assert_eq!(Ns::from_secs(u64::MAX / 2), Ns::MAX);
    }

    #[test]
    fn bucket_index_matches_filter_semantics() {
        let interval = Ns::from_millis(1);
        assert_eq!(Ns::from_micros(999).bucket_index(interval), 0);
        assert_eq!(Ns::from_millis(1).bucket_index(interval), 1);
        assert_eq!(Ns::from_micros(2500).bucket_index(interval), 2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Ns(5).saturating_sub(Ns(10)), Ns::ZERO);
        assert_eq!(Ns(10).saturating_sub(Ns(5)), Ns(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ns(12)), "12ns");
        assert_eq!(format!("{}", Ns(1500)), "1.500us");
        assert_eq!(format!("{}", Ns(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", Ns(3_500_000_000)), "3.500s");
    }
}
