//! Libpcap-format export of simulated traffic.
//!
//! Following smoltcp's practice of letting every example dump a `--pcap`
//! trace, this module synthesizes minimal Ethernet/IPv4/TCP frames from
//! packet metadata so simulated traffic can be inspected in Wireshark or
//! tcpdump. Sequence numbers, ECN codepoints, cumulative ACKs, and sizes
//! are faithful; payload bytes are zeros (the simulator carries none).
//!
//! The encoding is the classic pcap container (magic `0xa1b2c3d4`,
//! microsecond timestamps, LINKTYPE_ETHERNET).

use crate::packet::{EcnCodepoint, Packet, PacketKind};
use crate::time::Ns;
use std::io::{self, Write};

/// How many payload bytes to include per packet (`snaplen`-style cap).
/// Headers are always complete; payloads are zero-filled.
const MAX_CAPTURED_PAYLOAD: usize = 64;

const ETH_HDR: usize = 14;
const IP_HDR: usize = 20;
const TCP_HDR: usize = 20;

/// Writes a pcap stream of simulated packets.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer, emitting the pcap global header immediately.
    pub fn new(mut out: W) -> io::Result<Self> {
        // magic, version 2.4, thiszone 0, sigfigs 0, snaplen, ethernet.
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?;
        out.write_all(&4u16.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        out.write_all(&65_535u32.to_le_bytes())?;
        out.write_all(&1u32.to_le_bytes())?; // LINKTYPE_ETHERNET
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Number of packets written.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn mac_for(node: u32) -> [u8; 6] {
        // Locally-administered MACs derived from the node id.
        let b = node.to_be_bytes();
        [0x02, 0x00, b[0], b[1], b[2], b[3]]
    }

    fn ip_for(node: u32) -> [u8; 4] {
        // 10.x.y.z from the node id.
        let b = node.to_be_bytes();
        [10, b[1], b[2], b[3]]
    }

    /// Appends one simulated packet at simulation time `now`.
    pub fn write_packet(&mut self, now: Ns, pkt: &Packet) -> io::Result<()> {
        let payload_len = (pkt.size as usize)
            .saturating_sub(ETH_HDR + IP_HDR + TCP_HDR)
            .min(MAX_CAPTURED_PAYLOAD);
        let captured = ETH_HDR + IP_HDR + TCP_HDR + payload_len;
        let original = (pkt.size as usize).max(ETH_HDR + IP_HDR + TCP_HDR);

        // Record header: ts_sec, ts_usec, incl_len, orig_len.
        let us = now.as_nanos() / 1_000;
        self.out
            .write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
        self.out
            .write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
        self.out.write_all(&(captured as u32).to_le_bytes())?;
        self.out.write_all(&(original as u32).to_le_bytes())?;

        // Ethernet.
        self.out.write_all(&Self::mac_for(pkt.dst))?;
        self.out.write_all(&Self::mac_for(pkt.src))?;
        self.out.write_all(&0x0800u16.to_be_bytes())?; // IPv4

        // IPv4 header.
        let total_len = (original - ETH_HDR) as u16;
        let ecn_bits: u8 = match pkt.ecn {
            EcnCodepoint::NotEct => 0b00,
            EcnCodepoint::Ect => 0b10,
            EcnCodepoint::Ce => 0b11,
        };
        // The Meta-style diagnostic retransmit bit lives in an unused IP
        // header bit; we place it in the DSCP field's low bit so it is
        // visible in dissectors.
        let dscp: u8 = if pkt.retx_bit { 0b000001 } else { 0 };
        let mut ip = [0u8; IP_HDR];
        ip[0] = 0x45; // v4, ihl 5
        ip[1] = (dscp << 2) | ecn_bits;
        ip[2..4].copy_from_slice(&total_len.to_be_bytes());
        ip[8] = 64; // TTL
        ip[9] = 6; // TCP
        ip[12..16].copy_from_slice(&Self::ip_for(pkt.src));
        ip[16..20].copy_from_slice(&Self::ip_for(pkt.dst));
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        self.out.write_all(&ip)?;

        // TCP header: ports derived from the flow id so Wireshark groups
        // streams correctly.
        let port = 1024 + (pkt.flow.0 % 60_000) as u16;
        let mut tcp = [0u8; TCP_HDR];
        let (sport, dport, seq, ack, flags) = match pkt.kind {
            PacketKind::Data | PacketKind::Multicast => {
                (port, 80u16, pkt.seq as u32, 0u32, 0x18u8) // PSH|ACK
            }
            PacketKind::Ack => (80u16, port, 0u32, pkt.seq as u32, 0x10u8), // ACK
        };
        tcp[0..2].copy_from_slice(&sport.to_be_bytes());
        tcp[2..4].copy_from_slice(&dport.to_be_bytes());
        tcp[4..8].copy_from_slice(&seq.to_be_bytes());
        tcp[8..12].copy_from_slice(&ack.to_be_bytes());
        tcp[12] = 5 << 4; // data offset
        tcp[13] = flags;
        tcp[14..16].copy_from_slice(&0xFFFFu16.to_be_bytes()); // window
        self.out.write_all(&tcp)?;

        // Zero payload up to the snap cap.
        self.out
            .write_all(&[0u8; MAX_CAPTURED_PAYLOAD][..payload_len])?;

        self.packets += 1;
        Ok(())
    }
}

fn ipv4_checksum(header: &[u8; IP_HDR]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn capture(pkts: &[(Ns, Packet)]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (t, p) in pkts {
            w.write_packet(*t, p).unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn global_header_is_valid_pcap() {
        let bytes = capture(&[]);
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&bytes[20..24], &1u32.to_le_bytes(), "ethernet linktype");
    }

    #[test]
    fn record_lengths_are_consistent() {
        let pkt = Packet::data(FlowId(7), 3, 5, 1500, 1500);
        let bytes = capture(&[(Ns::from_micros(1_500_000), pkt)]);
        // Record header at offset 24.
        let incl = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(bytes[36..40].try_into().unwrap()) as usize;
        assert_eq!(orig, 1500);
        assert_eq!(incl, 14 + 20 + 20 + 64);
        assert_eq!(bytes.len(), 24 + 16 + incl);
        // Timestamp: 1.5 seconds.
        let sec = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let usec = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        assert_eq!((sec, usec), (1, 500_000));
    }

    #[test]
    fn ecn_and_retx_bits_encoded_in_ip_header() {
        let mut pkt = Packet::data(FlowId(1), 1, 2, 0, 200);
        pkt.ecn = EcnCodepoint::Ce;
        pkt.retx_bit = true;
        let bytes = capture(&[(Ns::ZERO, pkt)]);
        let ip_tos = bytes[24 + 16 + 14 + 1];
        assert_eq!(ip_tos & 0b11, 0b11, "CE codepoint");
        assert_eq!(ip_tos >> 2, 0b000001, "retx bit in DSCP");
    }

    #[test]
    fn ipv4_checksum_verifies() {
        let pkt = Packet::data(FlowId(1), 1, 2, 0, 1000);
        let bytes = capture(&[(Ns::ZERO, pkt)]);
        let ip = &bytes[24 + 16 + 14..24 + 16 + 14 + 20];
        // Recomputing over the header including the stored checksum must
        // yield zero (ones-complement property).
        let mut sum = 0u32;
        for chunk in ip.chunks(2) {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(!(sum as u16), 0);
    }

    #[test]
    fn acks_swap_ports_and_carry_ack_number() {
        let ack = Packet::ack(FlowId(42), 5, 3, 123_456, 0);
        let bytes = capture(&[(Ns::ZERO, ack)]);
        let tcp = &bytes[24 + 16 + 14 + 20..];
        let dport = u16::from_be_bytes([tcp[2], tcp[3]]);
        assert_eq!(dport, 1024 + 42);
        let ackno = u32::from_be_bytes([tcp[8], tcp[9], tcp[10], tcp[11]]);
        assert_eq!(ackno, 123_456);
        assert_eq!(tcp[13], 0x10, "pure ACK flag");
    }

    #[test]
    fn tiny_packets_never_underflow() {
        // A 64B wire ACK: headers (54B) plus the 10B remainder as payload.
        let ack = Packet::ack(FlowId(1), 1, 2, 0, 0);
        let bytes = capture(&[(Ns::ZERO, ack)]);
        let incl = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(bytes[36..40].try_into().unwrap()) as usize;
        assert_eq!(incl, 14 + 20 + 20 + 10);
        assert_eq!(orig, 64);
        // And a hypothetical sub-header packet clamps rather than panics.
        let mut tiny = Packet::ack(FlowId(1), 1, 2, 0, 0);
        tiny.size = 10;
        let bytes = capture(&[(Ns::ZERO, tiny)]);
        let orig = u32::from_le_bytes(bytes[36..40].try_into().unwrap()) as usize;
        assert_eq!(orig, 54, "clamped to full header size");
    }
}
