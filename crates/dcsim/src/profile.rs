//! Deterministic engine profiler: per-event-type dispatch counters plus
//! optional wall-time accounting.
//!
//! ROADMAP open item 2 (a parallel PDES engine) needs to know where
//! event-processing work goes — per event type, per component — before
//! the dispatch loop can be sharded. [`EngineProfile`] counts every
//! dispatch by kind; counts are a pure function of the event stream and
//! therefore byte-identical per seed. Wall-time accounting is *injected*:
//! the sim crates never read a clock (simlint's wall-clock rule), so a
//! relaxed caller (the bench crate) passes a monotonic-nanosecond
//! function via [`EngineProfile::set_clock`] and only then do the
//! `wall_ns` columns fill in. Exports keep the two strictly separated so
//! "compare only sim-time counters" is a field filter, not a diff hack:
//! [`EngineProfile::counts_json`] is deterministic, and the collapsed
//! stacks ([`EngineProfile::collapsed_stacks`]) fold counts, not time.

/// Per-event-type dispatch counters with optional wall-time accounting.
///
/// The kind table is fixed at construction (one slot per event-enum
/// variant plus whatever component grouping the caller chooses), so
/// recording is two slice stores — no allocation, no panic, no floats.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Kind names, e.g. `("switch", "TorArrive")`; index = kind id.
    names: &'static [(&'static str, &'static str)],
    /// Dispatches per kind (deterministic; sim-time only).
    counts: Vec<u64>,
    /// Wall nanoseconds per kind (all zero unless a clock is injected).
    wall_ns: Vec<u64>,
    /// Injected monotonic-nanosecond source; `None` in deterministic runs.
    clock: Option<fn() -> u64>,
}

impl EngineProfile {
    /// Builds a profiler over a fixed `(component, event)` kind table.
    pub fn new(names: &'static [(&'static str, &'static str)]) -> Self {
        EngineProfile {
            names,
            counts: vec![0; names.len()],
            wall_ns: vec![0; names.len()],
            clock: None,
        }
    }

    /// Injects a wall-clock source (monotonic nanoseconds). Only relaxed
    /// crates (bench) may call this — the sim itself never reads time.
    pub fn set_clock(&mut self, clock: fn() -> u64) {
        self.clock = clock.into();
    }

    /// Whether wall-time accounting is active.
    pub fn has_clock(&self) -> bool {
        self.clock.is_some()
    }

    /// Reads the injected clock, or 0 when profiling sim-time only.
    /// Callers bracket dispatch with two calls and pass the difference to
    /// [`EngineProfile::record_dispatch`].
    #[inline]
    pub fn clock_now(&self) -> u64 {
        match self.clock {
            Some(f) => f(),
            None => 0,
        }
    }

    /// Counts one dispatch of `kind`, attributing `wall` nanoseconds to
    /// it. On the per-event dispatch path: two bounded slice stores — no
    /// allocation, no panic (out-of-range kinds are ignored), no floats.
    #[inline]
    pub fn record_dispatch(&mut self, kind: usize, wall: u64) {
        if let Some(c) = self.counts.get_mut(kind) {
            *c += 1;
            self.wall_ns[kind] += wall;
        }
    }

    /// Counts one dispatch of `kind` without touching the wall column —
    /// the clock-less dispatch loop's cheaper bracket: one bounded
    /// slice store, no allocation, no panic.
    #[inline]
    pub fn record_count(&mut self, kind: usize) {
        if let Some(c) = self.counts.get_mut(kind) {
            *c += 1;
        }
    }

    /// Dispatch count of one kind (0 for out-of-range).
    pub fn count(&self, kind: usize) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total dispatches across all kinds.
    pub fn total_dispatches(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total attributed wall nanoseconds (0 without an injected clock).
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns.iter().sum()
    }

    /// Collapsed-stack flamegraph text (`inferno`/`flamegraph.pl` input):
    /// one `engine;<component>;<event> <count>` line per non-zero kind,
    /// in kind-table order. Folds the deterministic dispatch counts, so
    /// the text is byte-identical per seed.
    pub fn collapsed_stacks(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, &(component, event)) in self.names.iter().enumerate() {
            if self.counts[i] > 0 {
                let _ = writeln!(out, "engine;{component};{event} {}", self.counts[i]);
            }
        }
        out
    }

    /// JSON object with the deterministic counters first and the wall
    /// (non-deterministic) section last, so seed-stability checks can
    /// compare everything before `"wall"`.
    pub fn counts_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"dispatch\":{");
        let mut first = true;
        for (i, &(component, event)) in self.names.iter().enumerate() {
            if self.counts[i] == 0 {
                continue;
            }
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\"{component}.{event}\":{}", self.counts[i]);
        }
        let _ = write!(
            out,
            "}},\"total_dispatches\":{},\"wall\":{{\"accounted_ns\":{}",
            self.total_dispatches(),
            self.total_wall_ns()
        );
        let mut first = true;
        for (i, &(component, event)) in self.names.iter().enumerate() {
            if self.wall_ns[i] == 0 {
                continue;
            }
            let sep = if first { ",\"by_kind\":{" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\"{component}.{event}\":{}", self.wall_ns[i]);
        }
        if !first {
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: &[(&str, &str)] = &[
        ("switch", "TorArrive"),
        ("switch", "TorDrain"),
        ("host", "HostDeliver"),
    ];

    #[test]
    fn counts_are_deterministic_and_wall_free_by_default() {
        let run = || {
            let mut p = EngineProfile::new(KINDS);
            for _ in 0..5 {
                let t0 = p.clock_now();
                p.record_dispatch(0, p.clock_now() - t0);
            }
            p.record_dispatch(2, 0);
            p
        };
        let (a, b) = (run(), run());
        assert_eq!(a.counts_json(), b.counts_json());
        assert_eq!(a.collapsed_stacks(), b.collapsed_stacks());
        assert_eq!(a.total_dispatches(), 6);
        assert_eq!(a.count(0), 5);
        assert_eq!(a.count(1), 0);
        assert_eq!(a.total_wall_ns(), 0, "no clock injected, no wall time");
        assert!(!a.has_clock());
    }

    #[test]
    fn out_of_range_kind_is_ignored_not_panicking() {
        let mut p = EngineProfile::new(KINDS);
        p.record_dispatch(99, 1);
        assert_eq!(p.total_dispatches(), 0);
        assert_eq!(p.count(99), 0);
    }

    #[test]
    fn collapsed_stacks_fold_component_then_event() {
        let mut p = EngineProfile::new(KINDS);
        p.record_dispatch(1, 0);
        p.record_dispatch(1, 0);
        p.record_dispatch(2, 0);
        assert_eq!(
            p.collapsed_stacks(),
            "engine;switch;TorDrain 2\nengine;host;HostDeliver 1\n"
        );
    }

    #[test]
    fn injected_clock_fills_the_wall_section() {
        fn fake_clock() -> u64 {
            42
        }
        let mut p = EngineProfile::new(KINDS);
        p.set_clock(fake_clock);
        assert!(p.has_clock());
        let t0 = p.clock_now();
        assert_eq!(t0, 42);
        p.record_dispatch(0, 7);
        assert_eq!(p.total_wall_ns(), 7);
        let json = p.counts_json();
        assert!(json.contains("\"accounted_ns\":7"));
        assert!(json.contains("\"by_kind\":{\"switch.TorArrive\":7}"));
    }

    #[test]
    fn counts_json_is_valid_json() {
        let mut p = EngineProfile::new(KINDS);
        p.record_dispatch(0, 3);
        p.record_dispatch(2, 0);
        ms_telemetry::validate_json(&p.counts_json()).unwrap();
        ms_telemetry::validate_json(&EngineProfile::new(KINDS).counts_json()).unwrap();
    }
}
