//! Property-based tests for the shared-buffer switch: under arbitrary
//! enqueue/dequeue interleavings the buffer accounting must balance, the
//! pool must never exceed capacity, and FIFO order must hold per queue.

use ms_dcsim::packet::FlowId;
use ms_dcsim::{Ns, Packet, SharedBufferSwitch, SharingPolicy, SwitchConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { queue: usize, size: u32 },
    Dequeue { queue: usize },
}

fn op_strategy(queues: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..queues, 64u32..9000).prop_map(|(queue, size)| Op::Enqueue { queue, size }),
        2 => (0..queues).prop_map(|queue| Op::Dequeue { queue }),
    ]
}

fn config(policy: SharingPolicy, alpha: f64) -> SwitchConfig {
    SwitchConfig {
        num_queues: 6,
        num_quadrants: 2,
        quadrant_bytes: 200_000,
        dedicated_per_queue: 4_000,
        alpha,
        ecn_threshold: 30_000,
        policy,
    }
}

fn run_ops(cfg: SwitchConfig, ops: &[Op]) {
    let mut sw = SharedBufferSwitch::new(cfg.clone());
    // Track expected FIFO sequence numbers per queue.
    let mut next_seq = vec![0u64; cfg.num_queues];
    let mut expect_seq: Vec<std::collections::VecDeque<u64>> =
        vec![Default::default(); cfg.num_queues];
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Enqueue { queue, size } => {
                let mut pkt = Packet::data(FlowId(i as u64), 100, queue as u32, 0, size);
                pkt.seq = next_seq[queue];
                if sw.try_enqueue(queue, pkt, Ns(i as u64)).accepted() {
                    expect_seq[queue].push_back(next_seq[queue]);
                }
                next_seq[queue] += 1;
            }
            Op::Dequeue { queue } => {
                let got = sw.dequeue(queue);
                let want = expect_seq[queue].pop_front();
                assert_eq!(got.map(|p| p.seq), want, "FIFO violated on queue {queue}");
            }
        }
        sw.check_invariants();
        for quadrant in 0..cfg.num_quadrants {
            assert!(sw.shared_occupancy(quadrant) <= cfg.shared_capacity());
        }
    }
    // Drain everything; accounting must return to zero.
    for queue in 0..cfg.num_queues {
        while sw.dequeue(queue).is_some() {}
        assert_eq!(sw.queue_occupancy(queue), 0);
    }
    for quadrant in 0..cfg.num_quadrants {
        assert_eq!(sw.shared_occupancy(quadrant), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dt_switch_invariants_hold(ops in prop::collection::vec(op_strategy(6), 1..400)) {
        run_ops(config(SharingPolicy::DynamicThreshold, 1.0), &ops);
    }

    #[test]
    fn dt_low_alpha_invariants_hold(ops in prop::collection::vec(op_strategy(6), 1..400)) {
        run_ops(config(SharingPolicy::DynamicThreshold, 0.25), &ops);
    }

    #[test]
    fn complete_sharing_invariants_hold(ops in prop::collection::vec(op_strategy(6), 1..400)) {
        run_ops(config(SharingPolicy::CompleteSharing, 1.0), &ops);
    }

    #[test]
    fn static_partition_invariants_hold(ops in prop::collection::vec(op_strategy(6), 1..400)) {
        run_ops(config(SharingPolicy::StaticPartition, 1.0), &ops);
    }

    #[test]
    fn admitted_bytes_conserved(ops in prop::collection::vec(op_strategy(4), 1..300)) {
        // Bytes in == bytes held + bytes dequeued, per queue.
        let cfg = config(SharingPolicy::DynamicThreshold, 2.0);
        let mut sw = SharedBufferSwitch::new(cfg);
        let mut admitted = [0u64; 4];
        let mut dequeued = [0u64; 4];
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Enqueue { queue, size } => {
                    let queue = queue % 4;
                    let pkt = Packet::data(FlowId(i as u64), 100, queue as u32, 0, size);
                    if sw.try_enqueue(queue, pkt, Ns(i as u64)).accepted() {
                        admitted[queue] += size as u64;
                    }
                }
                Op::Dequeue { queue } => {
                    let queue = queue % 4;
                    if let Some(p) = sw.dequeue(queue) {
                        dequeued[queue] += p.size as u64;
                    }
                }
            }
        }
        for queue in 0..4 {
            prop_assert_eq!(
                admitted[queue],
                dequeued[queue] + sw.queue_occupancy(queue),
                "queue {} leaked bytes", queue
            );
        }
    }

    #[test]
    fn ecn_marks_only_above_threshold(
        sizes in prop::collection::vec(64u32..9000, 1..120)
    ) {
        let cfg = config(SharingPolicy::DynamicThreshold, 1.0);
        let threshold = cfg.ecn_threshold;
        let mut sw = SharedBufferSwitch::new(cfg);
        for (i, &size) in sizes.iter().enumerate() {
            let before = sw.queue_occupancy(0);
            let pkt = Packet::data(FlowId(i as u64), 100, 0, 0, size);
            if let ms_dcsim::EnqueueOutcome::Enqueued { marked } =
                sw.try_enqueue(0, pkt, Ns::ZERO)
            {
                let after = before + size as u64;
                prop_assert_eq!(marked, after > threshold,
                    "mark decision wrong at occupancy {}", after);
            }
        }
    }
}
