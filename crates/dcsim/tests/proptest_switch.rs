//! Randomized tests for the shared-buffer switch: under arbitrary
//! enqueue/dequeue interleavings the buffer accounting must balance, the
//! pool must never exceed capacity, and FIFO order must hold per queue.
//!
//! Inputs are generated from the repo's own deterministic [`SimRng`]
//! (the workspace builds offline, without proptest), so every case is
//! reproducible from its printed seed.

use ms_dcsim::packet::FlowId;
use ms_dcsim::{
    Bps, BufferPolicySpec, Bytes, Ns, Packet, SharedBufferSwitch, SimRng, SwitchConfig,
};

#[derive(Debug, Clone)]
enum Op {
    Enqueue { queue: usize, size: u32 },
    Dequeue { queue: usize },
}

/// Weighted 3:2 enqueue:dequeue, sizes in `64..9000` — the same
/// distribution the original proptest strategy drew from.
fn random_ops(rng: &mut SimRng, queues: usize, max_len: u64) -> Vec<Op> {
    let len = 1 + rng.gen_range(max_len) as usize;
    (0..len)
        .map(|_| {
            let queue = rng.gen_range(queues as u64) as usize;
            if rng.gen_range(5) < 3 {
                let size = 64 + rng.gen_range(9000 - 64) as u32;
                Op::Enqueue { queue, size }
            } else {
                Op::Dequeue { queue }
            }
        })
        .collect()
}

fn config(policy: BufferPolicySpec) -> SwitchConfig {
    SwitchConfig {
        num_queues: 6,
        num_quadrants: 2,
        quadrant_bytes: Bytes(200_000),
        dedicated_per_queue: Bytes(4_000),
        ecn_threshold: Bytes(30_000),
        policy,
    }
}

fn run_ops(cfg: SwitchConfig, ops: &[Op]) {
    let mut sw = SharedBufferSwitch::new(cfg.clone());
    // Track expected FIFO sequence numbers per queue.
    let mut next_seq = vec![0u64; cfg.num_queues];
    let mut expect_seq: Vec<std::collections::VecDeque<u64>> =
        vec![Default::default(); cfg.num_queues];
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Enqueue { queue, size } => {
                let mut pkt = Packet::data(FlowId(i as u64), 100, queue as u32, 0, size);
                pkt.seq = next_seq[queue];
                if sw.try_enqueue(queue, pkt, Ns(i as u64)).accepted() {
                    expect_seq[queue].push_back(next_seq[queue]);
                }
                next_seq[queue] += 1;
            }
            Op::Dequeue { queue } => {
                let got = sw.dequeue(queue, Ns(i as u64));
                let want = expect_seq[queue].pop_front();
                assert_eq!(got.map(|p| p.seq), want, "FIFO violated on queue {queue}");
            }
        }
        sw.check_invariants();
        for quadrant in 0..cfg.num_quadrants {
            assert!(sw.shared_occupancy(quadrant) <= cfg.shared_capacity());
        }
    }
    // Drain everything; accounting must return to zero.
    for queue in 0..cfg.num_queues {
        while sw.dequeue(queue, Ns::ZERO).is_some() {}
        assert_eq!(sw.queue_occupancy(queue), Bytes::ZERO);
    }
    for quadrant in 0..cfg.num_quadrants {
        assert_eq!(sw.shared_occupancy(quadrant), Bytes::ZERO);
    }
}

#[test]
fn dt_switch_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0001);
    for case in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(config(BufferPolicySpec::DtAlpha { alpha: 1.0 }), &ops);
        let _ = case;
    }
}

#[test]
fn dt_low_alpha_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0002);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(config(BufferPolicySpec::DtAlpha { alpha: 0.25 }), &ops);
    }
}

#[test]
fn complete_sharing_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0003);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(config(BufferPolicySpec::CompleteSharing), &ops);
    }
}

#[test]
fn static_partition_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0004);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(config(BufferPolicySpec::StaticPartition), &ops);
    }
}

#[test]
fn flexible_bounds_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0007);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(config(BufferPolicySpec::FlexibleBounds), &ops);
    }
}

#[test]
fn delay_driven_invariants_hold() {
    let mut rng = SimRng::new(0x5157_0008);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 6, 399);
        run_ops(
            config(BufferPolicySpec::DelayDriven {
                target: Ns::from_micros(30),
                drain: Bps(12_500_000_000),
            }),
            &ops,
        );
    }
}

#[test]
fn admitted_bytes_conserved() {
    // Bytes in == bytes held + bytes dequeued, per queue.
    let mut rng = SimRng::new(0x5157_0005);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 4, 299);
        let cfg = config(BufferPolicySpec::DtAlpha { alpha: 2.0 });
        let mut sw = SharedBufferSwitch::new(cfg);
        let mut admitted = [0u64; 4];
        let mut dequeued = [0u64; 4];
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Enqueue { queue, size } => {
                    let pkt = Packet::data(FlowId(i as u64), 100, queue as u32, 0, size);
                    if sw.try_enqueue(queue, pkt, Ns(i as u64)).accepted() {
                        admitted[queue] += u64::from(size);
                    }
                }
                Op::Dequeue { queue } => {
                    if let Some(p) = sw.dequeue(queue, Ns(i as u64)) {
                        dequeued[queue] += u64::from(p.size);
                    }
                }
            }
        }
        for queue in 0..4 {
            assert_eq!(
                admitted[queue],
                dequeued[queue] + sw.queue_occupancy(queue).as_u64(),
                "queue {queue} leaked bytes"
            );
        }
    }
}

#[test]
fn ecn_marks_only_above_threshold() {
    let mut rng = SimRng::new(0x5157_0006);
    for _ in 0..64 {
        let cfg = config(BufferPolicySpec::DtAlpha { alpha: 1.0 });
        let threshold = cfg.ecn_threshold;
        let mut sw = SharedBufferSwitch::new(cfg);
        let n = 1 + rng.gen_range(119) as usize;
        for i in 0..n {
            let size = 64 + rng.gen_range(9000 - 64) as u32;
            let before = sw.queue_occupancy(0);
            let pkt = Packet::data(FlowId(i as u64), 100, 0, 0, size);
            if let ms_dcsim::EnqueueOutcome::Enqueued { marked } = sw.try_enqueue(0, pkt, Ns::ZERO)
            {
                let after = before + Bytes(u64::from(size));
                assert_eq!(
                    marked,
                    after > threshold,
                    "mark decision wrong at occupancy {after}"
                );
            }
        }
    }
}
