//! Determinism regression for the switch: two runs of the same seeded
//! enqueue/dequeue schedule must produce byte-identical serialized
//! traces — outcomes, occupancies, and telemetry bins included. Paired
//! with `millisampler/tests/determinism.rs`, this pins the whole
//! pipeline's reproducibility claim at its two ends.

use ms_dcsim::{
    EcnCodepoint, EnqueueOutcome, FlowId, Ns, Packet, SharedBufferSwitch, SimRng, SwitchConfig,
};

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Drives a seeded workload against a fresh switch and serializes every
/// observable: per-op outcome, per-op occupancy, final stats, minute
/// bins.
fn switch_trace(seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    let cfg = SwitchConfig::meta_tor(16);
    let mut sw = SharedBufferSwitch::new(cfg);
    let queues = sw.config().num_queues;
    let mut trace = Vec::new();
    let ops = 20_000 + rng.gen_range(10_000);
    let mut now = Ns::ZERO;
    for i in 0..ops {
        now = now + Ns(rng.gen_range(50_000));
        let queue = rng.gen_range(queues as u64) as usize;
        if rng.gen_bool(0.7) {
            let size = 64 + rng.gen_range(9000 - 64) as u32;
            let mut pkt = Packet::data(FlowId(i), 0, 1, 0, size);
            if rng.gen_bool(0.2) {
                pkt.ecn = EcnCodepoint::NotEct;
            }
            match sw.try_enqueue(queue, pkt, now) {
                EnqueueOutcome::Enqueued { marked } => {
                    trace.push(if marked { 2 } else { 1 });
                }
                EnqueueOutcome::Dropped { reason } => {
                    trace.push(0);
                    trace.push(reason.code());
                }
            }
        } else {
            let popped = sw.dequeue(queue, now);
            trace.push(3);
            push_u64(&mut trace, popped.map_or(0, |p| u64::from(p.size)));
        }
        push_u64(&mut trace, sw.queue_occupancy(queue).as_u64());
        push_u64(
            &mut trace,
            sw.shared_occupancy(sw.config().quadrant_of(queue)).as_u64(),
        );
    }
    sw.check_invariants();
    for q in 0..queues {
        let st = sw.queue_stats(q);
        for v in [
            st.enq_packets,
            st.enq_bytes,
            st.drop_packets,
            st.drop_bytes,
            st.marked_packets,
            st.marked_bytes,
            st.max_occupancy.as_u64(),
        ] {
            push_u64(&mut trace, v);
        }
    }
    for bin in sw.minute_bins() {
        push_u64(&mut trace, bin.ingress_bytes);
        push_u64(&mut trace, bin.discard_bytes);
        push_u64(&mut trace, bin.discard_packets);
    }
    trace
}

#[test]
fn identical_seeds_produce_byte_identical_traces() {
    for seed in [0xD7_0001u64, 0xD7_0002, 0xD7_0003] {
        let a = switch_trace(seed);
        let b = switch_trace(seed);
        assert_eq!(a, b, "seed {seed:#x} diverged between runs");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    assert_ne!(switch_trace(0xD7_0001), switch_trace(0xD7_0002));
}
