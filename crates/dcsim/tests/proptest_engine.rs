//! Property-based tests for the event queue and link serialization.

use ms_dcsim::{EventQueue, Link, Ns};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pops_are_time_sorted_and_fifo_stable(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Ns(t), i);
        }
        let mut popped: Vec<(Ns, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    #[test]
    fn link_never_exceeds_line_rate(
        offers in prop::collection::vec((0u64..1_000_000, 64u32..9001), 1..200)
    ) {
        let rate = 10_000_000_000u64;
        let mut link = Link::new(rate, Ns::ZERO);
        let mut offers = offers;
        offers.sort_by_key(|&(t, _)| t);
        let mut total_bytes = 0u64;
        let mut last_depart = Ns::ZERO;
        let first = Ns(offers[0].0);
        for &(t, size) in &offers {
            let (depart, _arrive) = link.transmit(Ns(t), size);
            prop_assert!(depart >= last_depart, "departures must be ordered");
            last_depart = depart;
            total_bytes += size as u64;
        }
        // Over the whole busy horizon the link served at most line rate.
        let span = (last_depart - first).as_nanos().max(1);
        let max_bytes = span as u128 * rate as u128 / 8 / 1_000_000_000 + 9000;
        prop_assert!(
            (total_bytes as u128) <= max_bytes,
            "served {} bytes in {} ns", total_bytes, span
        );
    }

    #[test]
    fn tx_time_monotone_in_size(a in 1u64..100_000, b in 1u64..100_000) {
        let rate = 12_500_000_000;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Ns::tx_time(lo, rate) <= Ns::tx_time(hi, rate));
    }

    #[test]
    fn bucket_index_consistent_with_ranges(t in 0u64..10_000_000, interval in 1u64..100_000) {
        let iv = Ns(interval);
        let idx = Ns(t).bucket_index(iv);
        prop_assert!(idx * interval <= t);
        prop_assert!(t < (idx + 1) * interval);
    }
}
