//! Randomized tests for the event queue and link serialization, driven by
//! the repo's deterministic [`SimRng`] (the workspace builds offline,
//! without proptest).

use ms_dcsim::{Bps, Bytes, EventQueue, Link, Ns, SimRng};

#[test]
fn pops_are_time_sorted_and_fifo_stable() {
    let mut rng = SimRng::new(0xE1E1_0001);
    for _ in 0..128 {
        let len = 1 + rng.gen_range(299) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.gen_range(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Ns(t), i);
        }
        let mut popped: Vec<(Ns, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }
}

#[test]
fn link_never_exceeds_line_rate() {
    let mut rng = SimRng::new(0xE1E1_0002);
    for _ in 0..128 {
        let len = 1 + rng.gen_range(199) as usize;
        let mut offers: Vec<(u64, u32)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(1_000_000),
                    64 + rng.gen_range(9001 - 64) as u32,
                )
            })
            .collect();
        let rate = Bps(10_000_000_000);
        let mut link = Link::new(rate, Ns::ZERO);
        offers.sort_by_key(|&(t, _)| t);
        let mut total_bytes = 0u64;
        let mut last_depart = Ns::ZERO;
        let first = Ns(offers[0].0);
        for &(t, size) in &offers {
            let (depart, _arrive) = link.transmit(Ns(t), size);
            assert!(depart >= last_depart, "departures must be ordered");
            last_depart = depart;
            total_bytes += u64::from(size);
        }
        // Over the whole busy horizon the link served at most line rate.
        let span = (last_depart - first).as_nanos().max(1);
        let max_bytes = u128::from(span) * u128::from(rate.as_u64()) / 8 / 1_000_000_000 + 9000;
        assert!(
            u128::from(total_bytes) <= max_bytes,
            "served {total_bytes} bytes in {span} ns"
        );
    }
}

#[test]
fn tx_time_monotone_in_size() {
    let mut rng = SimRng::new(0xE1E1_0003);
    for _ in 0..256 {
        let a = 1 + rng.gen_range(99_999);
        let b = 1 + rng.gen_range(99_999);
        let rate = Bps(12_500_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(Ns::tx_time(Bytes(lo), rate) <= Ns::tx_time(Bytes(hi), rate));
    }
}

#[test]
fn bucket_index_consistent_with_ranges() {
    let mut rng = SimRng::new(0xE1E1_0004);
    for _ in 0..256 {
        let t = rng.gen_range(10_000_000);
        let interval = 1 + rng.gen_range(99_999);
        let iv = Ns(interval);
        let idx = Ns(t).bucket_index(iv);
        assert!(idx * interval <= t);
        assert!(t < (idx + 1) * interval);
    }
}
