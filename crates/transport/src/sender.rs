//! The sending half of a connection.
//!
//! [`Sender`] owns the byte stream, the congestion window, loss detection
//! (three duplicate ACKs → NewReno fast retransmit; RTO → slow-start
//! restart) and the **diagnostic retransmit bit**: the first segment sent
//! after a timeout or fast retransmission carries `retx_bit`, mirroring the
//! Meta kernel instrumentation that Millisampler counts (§4.2).
//!
//! The sender is a pure state machine: `poll_send`/`on_ack`/`on_timer`
//! return packets; the caller transmits them and schedules `next_timer()`.

use crate::cc::{AckInfo, CcAlgorithm, CongestionControl};
use crate::rtt::RttEstimator;
use ms_dcsim::packet::NodeId;
use ms_dcsim::{Bytes, FlowId, Ns, Packet};
use std::collections::VecDeque;

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Maximum segment size (wire bytes per full segment).
    pub mss: u32,
    /// Congestion control algorithm.
    pub algorithm: CcAlgorithm,
    /// RTO floor.
    pub min_rto: Ns,
    /// RTO ceiling.
    pub max_rto: Ns,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            mss: 1500,
            algorithm: CcAlgorithm::Dctcp,
            min_rto: Ns::from_millis(4),
            max_rto: Ns::from_secs(1),
        }
    }
}

/// Cumulative sender statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data bytes handed to the network (including retransmissions).
    pub bytes_sent: u64,
    /// Data packets handed to the network.
    pub packets_sent: u64,
    /// Retransmitted bytes.
    pub bytes_retx: u64,
    /// Fast-retransmit events.
    pub fast_retx_events: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
}

/// A segment in flight, for RTT sampling (Karn's algorithm).
#[derive(Debug, Clone, Copy)]
struct SentSeg {
    start: u64,
    end: u64,
    sent_at: Ns,
    retransmitted: bool,
}

/// The sending half of a one-directional connection.
#[derive(Debug)]
pub struct Sender {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    mss: u32,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,

    /// Bytes the application has committed to the stream.
    app_limit: u64,
    app_closed: bool,

    snd_una: u64,
    snd_nxt: u64,

    dup_acks: u32,
    in_recovery: bool,
    /// `snd_nxt` at the moment recovery was entered (NewReno `recover`).
    recover: u64,
    /// Set by a repair event; the next outgoing segment carries the bit.
    mark_retx_bit: bool,

    sent: VecDeque<SentSeg>,
    rto_deadline: Option<Ns>,
    stats: SenderStats,

    /// Optional telemetry hub; cwnd changes and RTO firings are traced.
    telemetry: Option<ms_telemetry::SharedTelemetry>,
    /// Last cwnd reported on the trace bus, to emit changes only.
    traced_cwnd: u64,
    /// A `FlowSpanStart` has been traced and its end has not.
    span_flow_open: bool,
    /// A `BurstSpanStart` has been traced and its end has not.
    span_burst_open: bool,
    /// A `RecoverySpanStart` has been traced and its end has not.
    span_recovery_open: bool,
    /// `snd_nxt` when the open recovery span started; the span closes on
    /// the first clean ACK at or past it.
    span_recover: u64,
}

impl Sender {
    /// Creates a sender for flow `flow` from node `src` to node `dst`.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, cfg: &SenderConfig) -> Self {
        Sender {
            flow,
            src,
            dst,
            mss: cfg.mss,
            cc: cfg.algorithm.build(cfg.mss),
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            app_limit: 0,
            app_closed: false,
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            mark_retx_bit: false,
            sent: VecDeque::new(),
            rto_deadline: None,
            stats: SenderStats::default(),
            telemetry: None,
            traced_cwnd: 0,
            span_flow_open: false,
            span_burst_open: false,
            span_recovery_open: false,
            span_recover: 0,
        }
    }

    /// Attaches a telemetry hub: congestion-window changes and RTO firings
    /// are recorded on its trace bus from now on.
    pub fn set_telemetry(&mut self, telemetry: ms_telemetry::SharedTelemetry) {
        self.traced_cwnd = self.cc.cwnd();
        self.telemetry = Some(telemetry);
    }

    /// Traces a cwnd change if the congestion controller moved the window
    /// since the last report. One branch when telemetry is off.
    fn note_cwnd(&mut self, now: Ns) {
        if let Some(tr) = &self.telemetry {
            let cwnd = self.cc.cwnd();
            if cwnd != self.traced_cwnd {
                self.traced_cwnd = cwnd;
                tr.borrow_mut()
                    .bus
                    .record(ms_telemetry::TraceEvent::CwndChange {
                        ns: now.as_nanos(),
                        flow: self.flow.0,
                        cwnd: Bytes(cwnd),
                    });
            }
        }
    }

    /// Records one span event on the trace bus (no-op when detached).
    fn note_span(&self, ev: ms_telemetry::TraceEvent) {
        if let Some(tr) = &self.telemetry {
            tr.borrow_mut().bus.record(ev);
        }
    }

    /// Traces span transitions after an ACK advanced `snd_una`: recovery
    /// exit, burst drain (in-flight hit zero), and flow completion —
    /// innermost-out so the Perfetto duration events nest. One branch
    /// when telemetry is off.
    fn note_ack_spans(&mut self, now: Ns) {
        if self.telemetry.is_none() {
            return;
        }
        let ns = now.as_nanos();
        let flow = self.flow.0;
        if self.span_recovery_open && !self.in_recovery && self.snd_una >= self.span_recover {
            self.span_recovery_open = false;
            self.note_span(ms_telemetry::TraceEvent::RecoverySpanEnd { ns, flow });
        }
        if self.span_burst_open && self.in_flight() == 0 {
            self.span_burst_open = false;
            self.note_span(ms_telemetry::TraceEvent::BurstSpanEnd { ns, flow });
        }
        if self.span_flow_open && self.is_complete() {
            self.span_flow_open = false;
            self.note_span(ms_telemetry::TraceEvent::FlowSpanEnd { ns, flow });
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Makes `bytes` more stream bytes available to send.
    pub fn push(&mut self, bytes: u64) {
        assert!(!self.app_closed, "push after close");
        self.app_limit += bytes;
    }

    /// Marks the stream complete: once everything is acknowledged the
    /// connection reports [`Sender::is_complete`].
    pub fn close(&mut self) {
        self.app_closed = true;
    }

    /// All committed bytes acknowledged and the stream closed.
    pub fn is_complete(&self) -> bool {
        self.app_closed && self.snd_una >= self.app_limit
    }

    /// Bytes currently unacknowledged.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window.
    pub fn cwnd(&self) -> Bytes {
        Bytes(self.cc.cwnd())
    }

    /// Bytes committed but not yet sent for the first time.
    pub fn backlog(&self) -> u64 {
        self.app_limit - self.snd_nxt
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The smoothed RTT, once sampled.
    pub fn srtt(&self) -> Option<Ns> {
        self.rtt.srtt()
    }

    /// When the retransmission timer fires next (absolute), if armed.
    pub fn next_timer(&self) -> Option<Ns> {
        self.rto_deadline
    }

    fn build_segment(&mut self, start: u64, len: u32, retransmission: bool) -> Packet {
        let mut pkt = Packet::data(self.flow, self.src, self.dst, start, len);
        pkt.is_retransmission = retransmission;
        if self.mark_retx_bit {
            pkt.retx_bit = true;
            self.mark_retx_bit = false;
        }
        self.stats.bytes_sent += len as u64;
        self.stats.packets_sent += 1;
        if retransmission {
            self.stats.bytes_retx += len as u64;
        }
        pkt
    }

    fn arm_rto(&mut self, now: Ns) {
        if self.in_flight() > 0 {
            self.rto_deadline = Some(now + self.rtt.rto());
        } else {
            self.rto_deadline = None;
        }
    }

    /// Sends as much new data as the window and the app backlog allow.
    pub fn poll_send(&mut self, now: Ns) -> Vec<Packet> {
        let was_idle = self.in_flight() == 0;
        let mut out = Vec::new();
        while self.snd_nxt < self.app_limit {
            let window_room = self.cc.cwnd().saturating_sub(self.in_flight());
            if window_room == 0 {
                break;
            }
            let len = (self.app_limit - self.snd_nxt)
                .min(self.mss as u64)
                .min(window_room.max(1)) as u32; // simlint: allow(cast-truncation): min with mss (u32) bounds it
                                                 // Never split below MSS while more data waits, unless the
                                                 // window forces it; always send at least something when the
                                                 // window has any room and nothing is in flight (avoid silly
                                                 // window lockout at cwnd < MSS after a timeout).
            if (len as u64) < self.mss as u64
                && self.app_limit - self.snd_nxt > len as u64
                && self.in_flight() > 0
            {
                break;
            }
            let start = self.snd_nxt;
            let pkt = self.build_segment(start, len, false);
            self.sent.push_back(SentSeg {
                start,
                end: start + len as u64,
                sent_at: now,
                retransmitted: false,
            });
            self.snd_nxt += len as u64;
            out.push(pkt);
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        if !out.is_empty() && self.telemetry.is_some() {
            let ns = now.as_nanos();
            let flow = self.flow.0;
            if !self.span_flow_open {
                self.span_flow_open = true;
                self.note_span(ms_telemetry::TraceEvent::FlowSpanStart { ns, flow });
            }
            if was_idle && !self.span_burst_open {
                self.span_burst_open = true;
                self.note_span(ms_telemetry::TraceEvent::BurstSpanStart { ns, flow });
            }
        }
        out
    }

    fn retransmit_head(&mut self, now: Ns) -> Packet {
        let start = self.snd_una;
        // simlint: allow(cast-truncation): min with mss (u32) bounds it
        let len = (self.snd_nxt - start).min(self.mss as u64) as u32;
        debug_assert!(len > 0, "retransmit with nothing outstanding");
        // Karn: mark overlapping sent records so they yield no RTT sample.
        for seg in self.sent.iter_mut() {
            if seg.start < start + len as u64 && seg.end > start {
                seg.retransmitted = true;
            }
        }
        self.mark_retx_bit = true;
        let pkt = self.build_segment(start, len, true);
        self.arm_rto(now);
        pkt
    }

    /// Processes a cumulative ACK; returns segments to transmit
    /// (retransmissions and/or new data opened up by the window).
    pub fn on_ack(&mut self, now: Ns, ack: &Packet) -> Vec<Packet> {
        debug_assert_eq!(ack.flow, self.flow);
        let ack_seq = ack.seq;
        let mut out = Vec::new();

        if ack_seq > self.snd_nxt {
            // Corrupt/impossible ACK; ignore.
            return out;
        }

        if ack_seq > self.snd_una {
            let acked_bytes = ack_seq - self.snd_una;
            self.snd_una = ack_seq;
            self.dup_acks = 0;

            // RTT sample from the newest fully-acked, never-retransmitted
            // segment (Karn's algorithm).
            let mut sample = None;
            while let Some(seg) = self.sent.front() {
                if seg.end <= ack_seq {
                    if !seg.retransmitted {
                        sample = Some(now.saturating_sub(seg.sent_at));
                    }
                    self.sent.pop_front();
                } else {
                    break;
                }
            }
            if let Some(rtt) = sample {
                self.rtt.on_sample(rtt);
            }

            if self.in_recovery {
                if ack_seq >= self.recover {
                    // Full recovery.
                    self.in_recovery = false;
                } else {
                    // NewReno partial ACK: the next hole is lost too;
                    // retransmit immediately, stay in recovery.
                    out.push(self.retransmit_head(now));
                }
            }

            self.cc.on_ack(AckInfo {
                now,
                acked_bytes,
                marked_bytes: ack.ecn_echo_bytes as u64,
                rtt: sample,
                in_flight: self.in_flight(),
            });

            self.arm_rto(now);
            self.note_cwnd(now);
            self.note_ack_spans(now);
        } else if ack_seq == self.snd_una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.stats.fast_retx_events += 1;
                self.cc.on_fast_retransmit(now);
                self.note_cwnd(now);
                if self.telemetry.is_some() && !self.span_recovery_open {
                    self.span_recovery_open = true;
                    self.span_recover = self.snd_nxt;
                    self.note_span(ms_telemetry::TraceEvent::RecoverySpanStart {
                        ns: now.as_nanos(),
                        flow: self.flow.0,
                        rto: false,
                    });
                }
                out.push(self.retransmit_head(now));
            }
        }

        out.extend(self.poll_send(now));
        out
    }

    /// Handles a timer expiration. Returns retransmissions if the RTO
    /// genuinely fired; stale timer events (deadline re-armed since the
    /// event was scheduled) are ignored, so callers need no cancellation.
    pub fn on_timer(&mut self, now: Ns) -> Vec<Packet> {
        match self.rto_deadline {
            Some(deadline) if now >= deadline => {}
            _ => return Vec::new(), // stale or unarmed
        }
        if self.in_flight() == 0 {
            self.rto_deadline = None;
            return Vec::new();
        }
        self.stats.timeouts += 1;
        self.rtt.on_timeout();
        self.cc.on_timeout(now);
        self.in_recovery = false;
        self.dup_acks = 0;
        if let Some(tr) = &self.telemetry {
            tr.borrow_mut()
                .bus
                .record(ms_telemetry::TraceEvent::RtoFired {
                    ns: now.as_nanos(),
                    flow: self.flow.0,
                });
            // An RTO supersedes any open fast-retransmit recovery span:
            // close it and open an RTO-triggered one ending at the first
            // clean ACK past the current send point.
            let ns = now.as_nanos();
            let flow = self.flow.0;
            if self.span_recovery_open {
                self.note_span(ms_telemetry::TraceEvent::RecoverySpanEnd { ns, flow });
            }
            self.span_recovery_open = true;
            self.span_recover = self.snd_nxt;
            self.note_span(ms_telemetry::TraceEvent::RecoverySpanStart {
                ns,
                flow,
                rto: true,
            });
        }
        self.note_cwnd(now);
        vec![self.retransmit_head(now)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_dcsim::packet::PacketKind;

    fn sender() -> Sender {
        Sender::new(FlowId(1), 100, 0, &SenderConfig::default())
    }

    fn ack_pkt(seq: u64) -> Packet {
        Packet::ack(FlowId(1), 0, 100, seq, 0)
    }

    #[test]
    fn initial_send_fills_initial_window() {
        let mut s = sender();
        s.push(100_000);
        let pkts = s.poll_send(Ns::ZERO);
        // IW = 10 MSS.
        assert_eq!(pkts.len(), 10);
        assert_eq!(s.in_flight(), 15_000);
        assert!(pkts.iter().all(|p| p.kind == PacketKind::Data));
        assert!(pkts.iter().all(|p| !p.retx_bit));
        // Sequences are contiguous MSS-sized segments.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.seq, i as u64 * 1500);
            assert_eq!(p.size, 1500);
        }
        assert!(s.next_timer().is_some(), "RTO armed with data in flight");
    }

    #[test]
    fn window_blocks_until_acked() {
        let mut s = sender();
        s.push(1_000_000);
        let first = s.poll_send(Ns::ZERO);
        assert!(!first.is_empty());
        assert!(s.poll_send(Ns::ZERO).is_empty(), "window exhausted");
        // Ack half; new data flows (plus slow-start growth).
        let more = s.on_ack(Ns::from_micros(100), &ack_pkt(7_500));
        assert!(!more.is_empty());
    }

    #[test]
    fn complete_when_closed_and_fully_acked() {
        let mut s = sender();
        s.push(3_000);
        s.close();
        let pkts = s.poll_send(Ns::ZERO);
        assert_eq!(pkts.len(), 2);
        assert!(!s.is_complete());
        s.on_ack(Ns::from_micros(50), &ack_pkt(3_000));
        assert!(s.is_complete());
        assert_eq!(s.in_flight(), 0);
        assert!(s.next_timer().is_none(), "RTO disarmed when idle");
    }

    #[test]
    fn short_final_segment() {
        let mut s = sender();
        s.push(2_000); // 1500 + 500
        let pkts = s.poll_send(Ns::ZERO);
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[1].size, 500);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit_with_bit() {
        let mut s = sender();
        s.push(100_000);
        s.poll_send(Ns::ZERO);
        // Three duplicate ACKs at the initial sequence.
        assert!(s.on_ack(Ns(1), &ack_pkt(0)).is_empty());
        assert!(s.on_ack(Ns(2), &ack_pkt(0)).is_empty());
        let out = s.on_ack(Ns(3), &ack_pkt(0));
        assert_eq!(s.stats().fast_retx_events, 1);
        let retx = &out[0];
        assert_eq!(retx.seq, 0);
        assert!(retx.is_retransmission);
        assert!(retx.retx_bit, "repair segment must carry the retx bit");
        // Only one retransmission per recovery entry.
        assert!(s.on_ack(Ns(4), &ack_pkt(0)).is_empty());
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut s = sender();
        s.push(100_000);
        s.poll_send(Ns::ZERO);
        for t in 1..=3 {
            s.on_ack(Ns(t), &ack_pkt(0));
        }
        // Partial ACK: first hole repaired, second hole revealed.
        let out = s.on_ack(Ns(10), &ack_pkt(1_500));
        let retx: Vec<_> = out.iter().filter(|p| p.is_retransmission).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 1_500);
    }

    #[test]
    fn full_ack_exits_recovery() {
        let mut s = sender();
        s.push(15_000);
        s.poll_send(Ns::ZERO);
        for t in 1..=3 {
            s.on_ack(Ns(t), &ack_pkt(0));
        }
        assert!(s.in_recovery);
        s.on_ack(Ns(20), &ack_pkt(15_000));
        assert!(!s.in_recovery);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn rto_retransmits_and_collapses_window() {
        let mut s = sender();
        s.push(15_000);
        s.poll_send(Ns::ZERO);
        let deadline = s.next_timer().unwrap();
        // Nothing happens before the deadline.
        assert!(s.on_timer(deadline - Ns(1)).is_empty());
        let out = s.on_timer(deadline);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_retransmission);
        assert!(out[0].retx_bit);
        assert_eq!(out[0].seq, 0);
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(s.cwnd(), Bytes(1500));
        // Backoff: next deadline further out than the first interval.
        let second = s.next_timer().unwrap();
        assert!(second - deadline >= deadline - Ns::ZERO);
    }

    #[test]
    fn stale_timer_event_ignored() {
        let mut s = sender();
        s.push(15_000);
        s.poll_send(Ns::ZERO);
        let first_deadline = s.next_timer().unwrap();
        // ACK everything: timer disarms; the stale event is a no-op.
        s.on_ack(Ns(100), &ack_pkt(15_000));
        assert!(s.on_timer(first_deadline).is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn rtt_sampling_skips_retransmitted_segments() {
        let mut s = sender();
        s.push(3_000);
        s.poll_send(Ns::ZERO);
        let deadline = s.next_timer().unwrap();
        s.on_timer(deadline); // segment 0 retransmitted
                              // ACK covering the retransmitted segment must not poison SRTT with
                              // the (huge) original-send-to-ack interval... sample comes from
                              // segment 2 (never retransmitted) only.
        s.on_ack(deadline + Ns::from_micros(10), &ack_pkt(3_000));
        let srtt = s.srtt().expect("sample from clean segment");
        // Clean segment was sent at t=0 and acked at deadline+10us; that IS
        // its real RTT, so just assert a sample exists and is sane.
        assert!(srtt > Ns::ZERO);
    }

    #[test]
    fn ack_beyond_snd_nxt_ignored() {
        let mut s = sender();
        s.push(1_500);
        s.poll_send(Ns::ZERO);
        let out = s.on_ack(Ns(5), &ack_pkt(999_999));
        assert!(out.is_empty());
        assert_eq!(s.in_flight(), 1_500);
    }

    #[test]
    fn retx_bit_set_only_once_per_repair() {
        let mut s = sender();
        s.push(100_000);
        s.poll_send(Ns::ZERO);
        for t in 1..=3 {
            s.on_ack(Ns(t), &ack_pkt(0));
        }
        // Recovery exits; subsequent new data has no bit.
        let out = s.on_ack(Ns(50), &ack_pkt(15_000));
        let fresh: Vec<_> = out.iter().filter(|p| !p.is_retransmission).collect();
        assert!(!fresh.is_empty());
        assert!(fresh.iter().all(|p| !p.retx_bit));
    }

    #[test]
    fn spans_trace_flow_burst_and_recovery_in_nesting_order() {
        use ms_telemetry::{Telemetry, TelemetryConfig};
        let mut s = sender();
        let hub = Telemetry::shared(TelemetryConfig::default());
        s.set_telemetry(hub.clone());
        s.push(15_000);
        s.close();
        s.poll_send(Ns::ZERO);
        for t in 1..=3 {
            s.on_ack(Ns(t), &ack_pkt(0));
        }
        s.on_ack(Ns(20), &ack_pkt(15_000));
        assert!(s.is_complete());

        let hub = hub.borrow();
        let kinds: Vec<&str> = hub.bus.iter().map(|e| e.kind()).collect();
        let pos = |k: &str| {
            kinds
                .iter()
                .position(|x| *x == k)
                .unwrap_or_else(|| panic!("missing {k} in {kinds:?}"))
        };
        let once = |k: &str| kinds.iter().filter(|x| **x == k).count() == 1;
        for k in [
            "flow-span-start",
            "burst-span-start",
            "recovery-span-start",
            "recovery-span-end",
            "burst-span-end",
            "flow-span-end",
        ] {
            assert!(once(k), "{k} must appear exactly once: {kinds:?}");
        }
        // Proper nesting: flow ⊃ burst ⊃ recovery.
        assert!(pos("flow-span-start") < pos("burst-span-start"));
        assert!(pos("burst-span-start") < pos("recovery-span-start"));
        assert!(pos("recovery-span-end") < pos("burst-span-end"));
        assert!(pos("burst-span-end") < pos("flow-span-end"));
    }

    #[test]
    fn rto_supersedes_fast_retransmit_recovery_span() {
        use ms_telemetry::{Telemetry, TelemetryConfig, TraceEvent};
        let mut s = sender();
        let hub = Telemetry::shared(TelemetryConfig::default());
        s.set_telemetry(hub.clone());
        s.push(30_000);
        s.close();
        s.poll_send(Ns::ZERO);
        for t in 1..=3 {
            s.on_ack(Ns(t), &ack_pkt(0));
        }
        let d = s.next_timer().unwrap();
        s.on_timer(d); // RTO while fast-retx recovery is open
        let mut t = d;
        for _ in 0..64 {
            if s.is_complete() {
                break;
            }
            t = t + Ns(1000);
            let nxt = s.snd_nxt;
            s.on_ack(t, &ack_pkt(nxt));
            s.poll_send(t);
        }
        assert!(s.is_complete());

        let hub = hub.borrow();
        let mut starts = Vec::new();
        let mut ends = 0;
        for ev in hub.bus.iter() {
            match *ev {
                TraceEvent::RecoverySpanStart { rto, .. } => starts.push(rto),
                TraceEvent::RecoverySpanEnd { .. } => ends += 1,
                _ => {}
            }
        }
        assert_eq!(starts, vec![false, true], "fast-retx then rto trigger");
        assert_eq!(ends, 2, "both recovery spans closed");
    }

    #[test]
    fn cwnd_below_mss_still_sends_when_idle() {
        // After a timeout cwnd = 1 MSS; ensure forward progress.
        let mut s = sender();
        s.push(50_000);
        s.poll_send(Ns::ZERO);
        let d = s.next_timer().unwrap();
        s.on_timer(d);
        // ACK the retransmission: window tiny but data must still flow.
        let out = s.on_ack(d + Ns(1000), &ack_pkt(15_000));
        assert!(!out.is_empty(), "sender stalled after timeout");
    }
}
