//! RTT estimation and retransmission-timeout computation.
//!
//! Jacobson/Karels SRTT/RTTVAR smoothing with the RFC 6298 RTO formula,
//! tuned for data center operation: the minimum RTO defaults to 4 ms
//! rather than Linux's 200 ms, the standard setting for DCTCP deployments
//! (a 200 ms floor would make every timeout dwarf the 2 s Millisampler run
//! and suppress all the dynamics under study).

use ms_dcsim::Ns;

/// Smoothed RTT state and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Ns>,
    rttvar: Ns,
    min_rto: Ns,
    max_rto: Ns,
    /// Current backoff multiplier (doubles per consecutive timeout).
    backoff: u32,
    /// Most recent raw sample, for diagnostics.
    last_sample: Option<Ns>,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO floor and ceiling.
    pub fn new(min_rto: Ns, max_rto: Ns) -> Self {
        assert!(min_rto < max_rto);
        RttEstimator {
            srtt: None,
            rttvar: Ns::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
            last_sample: None,
        }
    }

    /// Data-center defaults: 4 ms RTO floor, 1 s ceiling.
    pub fn datacenter() -> Self {
        RttEstimator::new(Ns::from_millis(4), Ns::from_secs(1))
    }

    /// Feeds one RTT sample (from a non-retransmitted segment — Karn's
    /// algorithm is the caller's responsibility). Resets timeout backoff.
    pub fn on_sample(&mut self, rtt: Ns) {
        self.last_sample = Some(rtt);
        self.backoff = 0;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Ns(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|
                //           srtt   = 7/8 srtt   + 1/8 sample
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = Ns((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                self.srtt = Some(Ns((7 * srtt.as_nanos() + rtt.as_nanos()) / 8));
            }
        }
    }

    /// Doubles the RTO (called on each retransmission timeout).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(12);
    }

    /// The smoothed RTT, if a sample has been taken.
    pub fn srtt(&self) -> Option<Ns> {
        self.srtt
    }

    /// The most recent raw sample.
    pub fn last_sample(&self) -> Option<Ns> {
        self.last_sample
    }

    /// The current retransmission timeout: `srtt + 4·rttvar`, clamped to
    /// `[min_rto, max_rto]`, doubled per outstanding backoff step.
    pub fn rto(&self) -> Ns {
        let base = match self.srtt {
            Some(srtt) => Ns(srtt.as_nanos() + 4 * self.rttvar.as_nanos()),
            // Before any sample: be conservative but not glacial.
            None => self.min_rto * 4,
        };
        let clamped = Ns(base
            .as_nanos()
            .clamp(self.min_rto.as_nanos(), self.max_rto.as_nanos()));
        let backed_off = Ns(clamped.as_nanos().saturating_mul(1 << self.backoff));
        Ns(backed_off.as_nanos().min(self.max_rto.as_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::datacenter();
        assert!(e.srtt().is_none());
        e.on_sample(Ns::from_micros(100));
        assert_eq!(e.srtt(), Some(Ns::from_micros(100)));
    }

    #[test]
    fn srtt_converges_to_stable_rtt() {
        let mut e = RttEstimator::datacenter();
        for _ in 0..100 {
            e.on_sample(Ns::from_micros(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt.as_nanos().abs_diff(80_000) < 1_000, "srtt {srtt}");
    }

    #[test]
    fn rto_has_floor() {
        let mut e = RttEstimator::datacenter();
        for _ in 0..50 {
            e.on_sample(Ns::from_micros(50)); // tiny RTT
        }
        assert_eq!(e.rto(), Ns::from_millis(4), "RTO must respect the floor");
    }

    #[test]
    fn rto_tracks_variance() {
        let mut stable = RttEstimator::new(Ns::from_micros(1), Ns::from_secs(10));
        let mut jittery = RttEstimator::new(Ns::from_micros(1), Ns::from_secs(10));
        for i in 0..100 {
            stable.on_sample(Ns::from_micros(500));
            jittery.on_sample(Ns::from_micros(if i % 2 == 0 { 100 } else { 900 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::datacenter();
        e.on_sample(Ns::from_millis(1));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.rto(), base * 4);
        e.on_sample(Ns::from_millis(1));
        assert_eq!(e.rto(), base);
    }

    #[test]
    fn rto_capped_at_max() {
        let mut e = RttEstimator::new(Ns::from_millis(1), Ns::from_millis(100));
        e.on_sample(Ns::from_millis(50));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), Ns::from_millis(100));
    }
}
