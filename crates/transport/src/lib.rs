//! # ms-transport — transport state machines for the rack simulator
//!
//! Implements the transport behaviour the paper's analysis depends on
//! (§3, §4.2, §8): **DCTCP** for in-region traffic, **Cubic** for
//! inter-region traffic, **Reno** as a classic baseline, loss recovery via
//! retransmission timeouts and NewReno-style fast retransmit, ECN echo, and
//! the Meta-style **diagnostic retransmit bit** that Millisampler counts.
//!
//! The design is *sans-io*, in the style of smoltcp: a [`Sender`] and a
//! [`Receiver`] are pure state machines. They are handed packets and
//! timer expirations by the caller and return packets to transmit; they
//! never touch an event queue or a clock. This keeps them unit-testable
//! in isolation and lets the simulation driver (in `ms-workload`) own all
//! scheduling.
//!
//! ## Simplifications (documented per DESIGN.md)
//!
//! * Cumulative ACKs with NewReno partial-ACK recovery; no SACK. Multiple
//!   losses per window repair at one hole per RTT, or by RTO — adequate
//!   for loss *accounting* fidelity, which is what the reproduction needs.
//! * ECN echo carries exact CE-marked byte counts on ACKs (the standard
//!   simulator simplification of DCTCP's ECE state machine).
//! * No tail-loss probes: the paper notes TLP-triggered sends do *not*
//!   carry the retransmit bit, so omitting TLP only removes events that
//!   Millisampler would not have counted anyway.
//! * Receive window is unbounded (DC servers; memory is not the bottleneck
//!   under study).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{CcAlgorithm, CongestionControl, Cubic, Dctcp, Reno};
pub use receiver::Receiver;
pub use rtt::RttEstimator;
pub use sender::{Sender, SenderConfig};
