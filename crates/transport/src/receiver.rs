//! The receiving half of a connection.
//!
//! [`Receiver`] reassembles the byte stream (tracking out-of-order
//! intervals), generates cumulative ACKs with **ECN echo** (the count of
//! CE-marked bytes since the last ACK, which DCTCP senders use to estimate
//! the marked fraction), sends immediate duplicate ACKs on out-of-order
//! arrivals (feeding the sender's fast retransmit), and implements delayed
//! ACKs (every 2nd in-order segment, or a 500 µs timer).

use ms_dcsim::packet::{NodeId, PacketKind};
use ms_dcsim::{FlowId, Ns, Packet};

/// Cumulative receiver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// In-sequence stream bytes delivered (each byte counted once).
    pub bytes_delivered: u64,
    /// Bytes that arrived entirely below `rcv_nxt` (spurious retransmits).
    pub duplicate_bytes: u64,
    /// CE-marked bytes observed.
    pub ce_bytes: u64,
    /// ACKs generated.
    pub acks_sent: u64,
    /// Data packets that arrived out of order.
    pub ooo_packets: u64,
    /// Data packets observed carrying the diagnostic retransmit bit.
    pub retx_bit_packets: u64,
}

/// The receiving half of a one-directional connection.
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    /// This host (ACK source).
    host: NodeId,
    /// The remote sender (ACK destination).
    peer: NodeId,
    rcv_nxt: u64,
    /// Sorted, disjoint out-of-order intervals above `rcv_nxt`.
    ooo: Vec<(u64, u64)>,
    /// CE-marked bytes since the last ACK (echoed on the next ACK).
    pending_ce: u32,
    /// In-order segments since the last ACK.
    segs_since_ack: u32,
    /// ACK every n in-order segments.
    ack_every: u32,
    /// Delayed-ACK timeout.
    delack_after: Ns,
    delack_deadline: Option<Ns>,
    stats: ReceiverStats,
    /// Trace sink for head-of-line-wait spans; `None` = tracing off.
    telemetry: Option<ms_telemetry::SharedTelemetry>,
    /// A `hol-wait` span is open (reordered data buffered above a hole).
    hol_open: bool,
}

impl Receiver {
    /// Creates a receiver on `host` for `flow` from `peer`.
    pub fn new(flow: FlowId, host: NodeId, peer: NodeId) -> Self {
        Receiver {
            flow,
            host,
            peer,
            rcv_nxt: 0,
            ooo: Vec::new(),
            pending_ce: 0,
            segs_since_ack: 0,
            ack_every: 2,
            delack_after: Ns::from_micros(500),
            delack_deadline: None,
            stats: ReceiverStats::default(),
            telemetry: None,
            hol_open: false,
        }
    }

    /// Attaches a telemetry hub; the receiver then emits `hol-wait` spans
    /// covering the time reordered data sits buffered behind a hole.
    pub fn set_telemetry(&mut self, telemetry: ms_telemetry::SharedTelemetry) {
        self.telemetry = Some(telemetry);
    }

    #[inline]
    fn note_hol(&self, ev: ms_telemetry::TraceEvent) {
        if let Some(tr) = &self.telemetry {
            tr.borrow_mut().bus.record(ev);
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next expected stream byte.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The pending delayed-ACK deadline, if armed.
    pub fn next_timer(&self) -> Option<Ns> {
        self.delack_deadline
    }

    fn make_ack(&mut self) -> Packet {
        self.stats.acks_sent += 1;
        self.segs_since_ack = 0;
        self.delack_deadline = None;
        let ce = self.pending_ce;
        self.pending_ce = 0;
        Packet::ack(self.flow, self.host, self.peer, self.rcv_nxt, ce)
    }

    /// Absorbs adjacent out-of-order intervals into `rcv_nxt`.
    fn merge_ooo(&mut self) {
        while let Some(&(start, end)) = self.ooo.first() {
            if start <= self.rcv_nxt {
                if end > self.rcv_nxt {
                    self.stats.bytes_delivered += end - self.rcv_nxt;
                    self.rcv_nxt = end;
                }
                self.ooo.remove(0);
            } else {
                break;
            }
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        // Insert and coalesce overlapping intervals, keeping order.
        let mut merged = (start, end);
        let mut out = Vec::with_capacity(self.ooo.len() + 1);
        for &(s, e) in &self.ooo {
            if e < merged.0 || s > merged.1 {
                out.push((s, e));
            } else {
                merged = (merged.0.min(s), merged.1.max(e));
            }
        }
        out.push(merged);
        out.sort_unstable();
        self.ooo = out;
    }

    /// Processes an arriving data segment; returns an ACK when one is due.
    pub fn on_data(&mut self, now: Ns, pkt: &Packet) -> Option<Packet> {
        debug_assert_eq!(pkt.flow, self.flow);
        debug_assert_eq!(pkt.kind, PacketKind::Data);
        let start = pkt.seq;
        let end = pkt.seq + pkt.size as u64;

        if pkt.is_ce() {
            self.pending_ce = self.pending_ce.saturating_add(pkt.size);
            self.stats.ce_bytes += pkt.size as u64;
        }
        if pkt.retx_bit {
            self.stats.retx_bit_packets += 1;
        }

        if end <= self.rcv_nxt {
            // Entirely duplicate data: ACK immediately to resync the peer.
            self.stats.duplicate_bytes += pkt.size as u64;
            return Some(self.make_ack());
        }

        if start <= self.rcv_nxt {
            // In-order (possibly partially duplicate) delivery.
            let filled_hole = !self.ooo.is_empty();
            let new_bytes = end - self.rcv_nxt;
            self.stats.bytes_delivered += new_bytes;
            self.rcv_nxt = end;
            self.merge_ooo();
            if self.hol_open && self.ooo.is_empty() {
                self.hol_open = false;
                self.note_hol(ms_telemetry::TraceEvent::HolSpanEnd {
                    ns: now.as_nanos(),
                    flow: self.flow.0,
                });
            }
            self.segs_since_ack += 1;
            // ACK immediately on the usual cadence, while reordered data is
            // buffered, or when this segment just filled a hole (so the
            // sender learns about the repaired sequence space at once).
            if self.segs_since_ack >= self.ack_every || !self.ooo.is_empty() || filled_hole {
                return Some(self.make_ack());
            }
            if self.delack_deadline.is_none() {
                self.delack_deadline = Some(now + self.delack_after);
            }
            None
        } else {
            // Out of order: remember the interval, duplicate-ACK now.
            self.stats.ooo_packets += 1;
            if !self.hol_open && self.telemetry.is_some() {
                self.hol_open = true;
                self.note_hol(ms_telemetry::TraceEvent::HolSpanStart {
                    ns: now.as_nanos(),
                    flow: self.flow.0,
                });
            }
            self.insert_ooo(start, end);
            Some(self.make_ack())
        }
    }

    /// Handles a delayed-ACK timer expiration; stale events are ignored.
    pub fn on_timer(&mut self, now: Ns) -> Option<Packet> {
        match self.delack_deadline {
            Some(deadline) if now >= deadline => Some(self.make_ack()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, size: u32) -> Packet {
        Packet::data(FlowId(1), 100, 0, seq, size)
    }

    fn rx() -> Receiver {
        Receiver::new(FlowId(1), 0, 100)
    }

    #[test]
    fn in_order_delivery_acks_every_second_segment() {
        let mut r = rx();
        assert!(r.on_data(Ns(0), &data(0, 1500)).is_none());
        let ack = r.on_data(Ns(10), &data(1500, 1500)).expect("ack");
        assert_eq!(ack.seq, 3000);
        assert_eq!(r.rcv_nxt(), 3000);
        assert_eq!(ack.src, 0);
        assert_eq!(ack.dst, 100);
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let mut r = rx();
        assert!(r.on_data(Ns(0), &data(0, 1500)).is_none());
        let deadline = r.next_timer().expect("delack armed");
        assert!(r.on_timer(deadline - Ns(1)).is_none(), "not yet");
        let ack = r.on_timer(deadline).expect("delack fired");
        assert_eq!(ack.seq, 1500);
        assert!(r.next_timer().is_none());
    }

    #[test]
    fn out_of_order_triggers_immediate_dup_ack() {
        let mut r = rx();
        r.on_data(Ns(0), &data(0, 1500));
        // Segment 2 lost, segment 3 arrives.
        let dup = r.on_data(Ns(10), &data(3000, 1500)).expect("dup ack");
        assert_eq!(dup.seq, 1500, "cumulative ACK stays at the hole");
        let dup2 = r.on_data(Ns(20), &data(4500, 1500)).expect("dup ack");
        assert_eq!(dup2.seq, 1500);
        assert_eq!(r.stats().ooo_packets, 2);
    }

    #[test]
    fn hole_fill_advances_over_buffered_data() {
        let mut r = rx();
        r.on_data(Ns(0), &data(0, 1500));
        r.on_data(Ns(1), &data(3000, 1500));
        r.on_data(Ns(2), &data(4500, 1500));
        // The retransmission filling the hole jumps rcv_nxt over the
        // buffered out-of-order intervals.
        let ack = r.on_data(Ns(3), &data(1500, 1500)).expect("ack");
        assert_eq!(ack.seq, 6000);
        assert_eq!(r.stats().bytes_delivered, 6000);
    }

    #[test]
    fn duplicate_segments_acked_but_not_delivered_twice() {
        let mut r = rx();
        r.on_data(Ns(0), &data(0, 1500));
        r.on_data(Ns(1), &data(1500, 1500));
        let before = r.stats().bytes_delivered;
        let ack = r.on_data(Ns(2), &data(0, 1500)).expect("resync ack");
        assert_eq!(ack.seq, 3000);
        assert_eq!(r.stats().bytes_delivered, before);
        assert_eq!(r.stats().duplicate_bytes, 1500);
    }

    #[test]
    fn ecn_echo_accumulates_and_clears() {
        let mut r = rx();
        let mut ce = data(0, 1500);
        ce.ecn = ms_dcsim::EcnCodepoint::Ce;
        r.on_data(Ns(0), &ce);
        let mut ce2 = data(1500, 1500);
        ce2.ecn = ms_dcsim::EcnCodepoint::Ce;
        let ack = r.on_data(Ns(1), &ce2).expect("ack");
        assert_eq!(ack.ecn_echo_bytes, 3000);
        // Echo cleared after being sent.
        r.on_data(Ns(2), &data(3000, 1500));
        let ack2 = r.on_data(Ns(3), &data(4500, 1500)).expect("ack");
        assert_eq!(ack2.ecn_echo_bytes, 0);
    }

    #[test]
    fn retx_bit_counted() {
        let mut r = rx();
        let mut p = data(0, 1500);
        p.retx_bit = true;
        r.on_data(Ns(0), &p);
        assert_eq!(r.stats().retx_bit_packets, 1);
    }

    #[test]
    fn hol_wait_span_brackets_the_reordering_episode() {
        use ms_telemetry::{Telemetry, TelemetryConfig, TraceEvent};
        let mut r = rx();
        let hub = Telemetry::shared(TelemetryConfig::default());
        r.set_telemetry(hub.clone());
        r.on_data(Ns(0), &data(0, 1500));
        r.on_data(Ns(10), &data(3000, 1500)); // hole opens
        r.on_data(Ns(20), &data(4500, 1500)); // still the same episode
        r.on_data(Ns(30), &data(1500, 1500)); // hole filled
                                              // A second, separate episode.
        r.on_data(Ns(40), &data(7500, 1500));
        r.on_data(Ns(50), &data(6000, 1500));
        let hub = hub.borrow();
        let spans: Vec<(u64, &str)> = hub
            .bus
            .iter()
            .filter_map(|e| match e {
                TraceEvent::HolSpanStart { ns, .. } => Some((*ns, "start")),
                TraceEvent::HolSpanEnd { ns, .. } => Some((*ns, "end")),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![(10, "start"), (30, "end"), (40, "start"), (50, "end")]
        );
    }

    #[test]
    fn overlapping_ooo_intervals_coalesce() {
        let mut r = rx();
        r.on_data(Ns(0), &data(3000, 1500));
        r.on_data(Ns(1), &data(3750, 1500)); // overlaps previous
        r.on_data(Ns(2), &data(6000, 1500)); // disjoint
        assert_eq!(r.ooo, vec![(3000, 5250), (6000, 7500)]);
        // Fill from 0: everything up to 5250 delivered, hole remains.
        let ack = r.on_data(Ns(3), &data(0, 3000)).expect("ack");
        assert_eq!(ack.seq, 5250);
    }
}
