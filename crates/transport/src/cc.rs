//! Congestion control algorithms.
//!
//! The Meta network runs **DCTCP** for in-region traffic and **Cubic** for
//! inter-region traffic (§3). **Reno** is included as the textbook baseline
//! used in ablations. All three implement [`CongestionControl`], a
//! byte-based interface fed by the [`crate::Sender`].
//!
//! Windows are in bytes. All algorithms:
//! * start in slow start with a 10-MSS initial window,
//! * halve-ish on fast retransmit (algorithm-specific factor),
//! * collapse to 1 MSS on retransmission timeout,
//! * never fall below 1 MSS.

use ms_dcsim::Ns;

/// Which congestion control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgorithm {
    /// Data Center TCP: ECN-proportional backoff (in-region default).
    Dctcp,
    /// Cubic (inter-region traffic).
    Cubic,
    /// Classic NewReno (baseline).
    Reno,
}

impl CcAlgorithm {
    /// Instantiates the algorithm for a given MSS.
    pub fn build(self, mss: u32) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Dctcp => Box::new(Dctcp::new(mss)),
            CcAlgorithm::Cubic => Box::new(Cubic::new(mss)),
            CcAlgorithm::Reno => Box::new(Reno::new(mss)),
        }
    }
}

/// Events fed from the sender's ACK clock into a congestion controller.
#[derive(Debug, Clone, Copy)]
pub struct AckInfo {
    /// Time the ACK was processed.
    pub now: Ns,
    /// Newly acknowledged bytes (cumulative progress).
    pub acked_bytes: u64,
    /// Of those, bytes the receiver reported as CE-marked.
    pub marked_bytes: u64,
    /// RTT sample attached to this ACK, if it produced one.
    pub rtt: Option<Ns>,
    /// Bytes in flight after this ACK.
    pub in_flight: u64,
}

/// A byte-based congestion control algorithm.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Processes an acknowledgment.
    fn on_ack(&mut self, info: AckInfo);
    /// A fast retransmit fired (entering loss recovery).
    fn on_fast_retransmit(&mut self, now: Ns);
    /// A retransmission timeout fired.
    fn on_timeout(&mut self, now: Ns);
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;
    /// Slow-start threshold in bytes (u64::MAX before the first loss).
    fn ssthresh(&self) -> u64;
    /// Algorithm name for reporting.
    fn name(&self) -> &'static str;
}

/// Initial window in **bytes**: 10 segments of a standard 1500 B MSS
/// (RFC 6928's IW10). Kept byte-denominated so simulations that use jumbo
/// segments to cut event counts do not inflate the incast first-wave size,
/// which would distort the §8 loss dynamics.
const INITIAL_WINDOW_BYTES: u64 = 15_000;

/// Upper bound on any congestion window (64 MB). Real stacks are bounded by
/// socket buffer sizes; an explicit cap also keeps byte arithmetic far from
/// overflow under pathological ACK streams.
pub const MAX_CWND: u64 = 64 * 1024 * 1024;

fn initial_cwnd(mss: u32) -> u64 {
    INITIAL_WINDOW_BYTES.max(2 * mss as u64)
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

/// NewReno: slow start, AIMD congestion avoidance, ECN treated as loss
/// (at most one multiplicative decrease per RTT, RFC 3168 style).
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Accumulated ACKed bytes for CA growth.
    acked_accum: u64,
    /// Bytes ACKed since the last ECN-triggered reduction; used to limit
    /// ECN reductions to one per window.
    bytes_since_ecn_cut: u64,
}

impl Reno {
    /// Creates a Reno controller.
    pub fn new(mss: u32) -> Self {
        Reno {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            acked_accum: 0,
            bytes_since_ecn_cut: u64::MAX / 2,
        }
    }

    fn halve(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.ssthresh;
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, info: AckInfo) {
        // ECN: cut once per window of data, like a loss but without retx.
        if info.marked_bytes > 0 && self.bytes_since_ecn_cut >= self.cwnd {
            self.halve();
            self.bytes_since_ecn_cut = 0;
            return;
        }
        self.bytes_since_ecn_cut = self.bytes_since_ecn_cut.saturating_add(info.acked_bytes);

        if self.cwnd < self.ssthresh {
            // Slow start: cwnd grows by the bytes acknowledged.
            self.cwnd = (self.cwnd + info.acked_bytes).min(MAX_CWND);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of ACKed bytes.
            self.acked_accum += info.acked_bytes;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss as u64;
            }
        }
    }

    fn on_fast_retransmit(&mut self, _now: Ns) {
        self.halve();
    }

    fn on_timeout(&mut self, _now: Ns) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.mss as u64;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd.max(self.mss as u64)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

// ---------------------------------------------------------------------------
// Cubic
// ---------------------------------------------------------------------------

/// Cubic (RFC 8312, without the TCP-friendly region — DC RTTs are so small
/// that the cubic region dominates anyway; documented simplification).
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Window size before the last reduction, in bytes.
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<Ns>,
    /// Pending ECN cut limiter (one per window).
    bytes_since_ecn_cut: u64,
}

/// Cubic scaling constant (RFC 8312), in MSS/s³ units.
const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Creates a Cubic controller.
    pub fn new(mss: u32) -> Self {
        Cubic {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            bytes_since_ecn_cut: u64::MAX / 2,
        }
    }

    fn reduce(&mut self, now: Ns) {
        self.w_max = self.cwnd as f64;
        self.cwnd = ((self.cwnd as f64 * CUBIC_BETA) as u64).max(2 * self.mss as u64);
        self.ssthresh = self.cwnd;
        self.epoch_start = Some(now);
    }

    fn cubic_window(&self, now: Ns) -> u64 {
        let Some(epoch) = self.epoch_start else {
            return self.cwnd;
        };
        let mss = self.mss as f64;
        let w_max_seg = self.w_max / mss;
        let k = (w_max_seg * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let t = (now.saturating_sub(epoch)).as_secs_f64();
        let w = CUBIC_C * (t - k).powi(3) + w_max_seg;
        (w * mss) as u64
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, info: AckInfo) {
        if info.marked_bytes > 0 && self.bytes_since_ecn_cut >= self.cwnd {
            self.reduce(info.now);
            self.bytes_since_ecn_cut = 0;
            return;
        }
        self.bytes_since_ecn_cut = self.bytes_since_ecn_cut.saturating_add(info.acked_bytes);

        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + info.acked_bytes).min(MAX_CWND);
        } else {
            let target = self.cubic_window(info.now);
            if target > self.cwnd {
                // Approach the cubic target gradually (per-ACK step bounded
                // by cwnd growth of at most one MSS per MSS acked).
                let step = (target - self.cwnd).min(info.acked_bytes);
                self.cwnd += step;
            }
        }
    }

    fn on_fast_retransmit(&mut self, now: Ns) {
        self.reduce(now);
    }

    fn on_timeout(&mut self, now: Ns) {
        self.reduce(now);
        self.cwnd = self.mss as u64;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd.max(self.mss as u64)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

// ---------------------------------------------------------------------------
// DCTCP
// ---------------------------------------------------------------------------

/// Data Center TCP (Alizadeh et al., SIGCOMM 2010).
///
/// Maintains `α`, an EWMA of the fraction `F` of bytes that were CE-marked
/// per observation window (one RTT of data), with gain `g = 1/16`:
///
/// ```text
/// α ← (1 − g)·α + g·F
/// ```
///
/// and on windows containing any mark reduces `cwnd ← cwnd·(1 − α/2)`.
/// Because the reduction is proportional to the *extent* of congestion,
/// DCTCP holds queues near the marking threshold — which is exactly why
/// the paper's ToRs can run a 120 KB ECN threshold against a multi-MB
/// buffer, and why persistent-contention racks adapt so well (§8.1).
#[derive(Debug, Clone)]
pub struct Dctcp {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// The EWMA marked fraction.
    alpha: f64,
    /// EWMA gain.
    g: f64,
    /// Bytes acked in the current observation window.
    window_acked: u64,
    /// Marked bytes acked in the current observation window.
    window_marked: u64,
    /// Window boundary: when `total_acked` crosses this, fold the window.
    window_end: u64,
    /// Total bytes acked over the connection lifetime.
    total_acked: u64,
    acked_accum: u64,
}

impl Dctcp {
    /// Creates a DCTCP controller with the standard gain `g = 1/16`.
    pub fn new(mss: u32) -> Self {
        Dctcp {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            alpha: 1.0, // start conservative, as deployed implementations do
            g: 1.0 / 16.0,
            window_acked: 0,
            window_marked: 0,
            window_end: 0,
            total_acked: 0,
            acked_accum: 0,
        }
    }

    /// The current α estimate (exposed for tests and telemetry).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn fold_window(&mut self) {
        if self.window_acked == 0 {
            return;
        }
        let f = self.window_marked as f64 / self.window_acked as f64;
        self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
        if self.window_marked > 0 {
            // Proportional reduction, at most once per window.
            let new = (self.cwnd as f64 * (1.0 - self.alpha / 2.0)) as u64;
            self.cwnd = new.max(2 * self.mss as u64);
            self.ssthresh = self.ssthresh.min(self.cwnd);
        }
        self.window_acked = 0;
        self.window_marked = 0;
        self.window_end = self.total_acked + self.cwnd;
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, info: AckInfo) {
        self.total_acked += info.acked_bytes;
        self.window_acked += info.acked_bytes;
        self.window_marked += info.marked_bytes.min(info.acked_bytes);

        if self.total_acked >= self.window_end {
            self.fold_window();
        }

        // Growth: DCTCP uses standard slow start / congestion avoidance.
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + info.acked_bytes).min(MAX_CWND);
        } else {
            self.acked_accum += info.acked_bytes;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss as u64;
            }
        }
    }

    fn on_fast_retransmit(&mut self, _now: Ns) {
        // Loss: DCTCP falls back to a Reno-style halving.
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.ssthresh;
        self.window_end = self.total_acked + self.cwnd;
    }

    fn on_timeout(&mut self, _now: Ns) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.mss as u64;
        self.window_end = self.total_acked + self.cwnd;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd.max(self.mss as u64)
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1500;

    fn clean_ack(acked: u64, in_flight: u64) -> AckInfo {
        AckInfo {
            now: Ns::ZERO,
            acked_bytes: acked,
            marked_bytes: 0,
            rtt: Some(Ns::from_micros(100)),
            in_flight,
        }
    }

    #[test]
    fn all_start_at_initial_window() {
        for alg in [CcAlgorithm::Dctcp, CcAlgorithm::Cubic, CcAlgorithm::Reno] {
            let cc = alg.build(MSS);
            assert_eq!(cc.cwnd(), 10 * MSS as u64, "{}", cc.name());
        }
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(MSS);
        let before = cc.cwnd();
        // Ack a full window.
        cc.on_ack(clean_ack(before, 0));
        assert_eq!(cc.cwnd(), 2 * before);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = Reno::new(MSS);
        cc.on_fast_retransmit(Ns::ZERO); // force ssthresh = cwnd
        let base = cc.cwnd();
        // One full window of ACKs ≈ +1 MSS.
        cc.on_ack(clean_ack(base, 0));
        assert_eq!(cc.cwnd(), base + MSS as u64);
    }

    #[test]
    fn reno_timeout_collapses_to_one_mss() {
        let mut cc = Reno::new(MSS);
        cc.on_ack(clean_ack(30_000, 0));
        cc.on_timeout(Ns::ZERO);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert!(cc.ssthresh() < u64::MAX);
    }

    #[test]
    fn reno_ecn_cuts_once_per_window() {
        let mut cc = Reno::new(MSS);
        let before = cc.cwnd();
        let marked = AckInfo {
            marked_bytes: MSS as u64,
            ..clean_ack(MSS as u64, before)
        };
        cc.on_ack(marked);
        let after_first = cc.cwnd();
        assert!(after_first < before);
        // Immediately-following marks in the same window are absorbed.
        cc.on_ack(AckInfo {
            marked_bytes: MSS as u64,
            ..clean_ack(MSS as u64, before)
        });
        assert_eq!(cc.cwnd(), after_first);
    }

    #[test]
    fn dctcp_alpha_tracks_marked_fraction() {
        let mut cc = Dctcp::new(MSS);
        // Feed many windows with 30% marks: alpha should approach 0.3.
        for _ in 0..2000 {
            let w = cc.cwnd();
            cc.on_ack(AckInfo {
                now: Ns::ZERO,
                acked_bytes: w,
                marked_bytes: (w as f64 * 0.3) as u64,
                rtt: None,
                in_flight: 0,
            });
        }
        let a = cc.alpha();
        assert!((a - 0.3).abs() < 0.07, "alpha {a}");
    }

    #[test]
    fn dctcp_alpha_decays_without_marks() {
        let mut cc = Dctcp::new(MSS);
        for _ in 0..200 {
            let w = cc.cwnd();
            cc.on_ack(clean_ack(w, 0));
        }
        assert!(cc.alpha() < 0.01, "alpha {}", cc.alpha());
    }

    #[test]
    fn dctcp_gentle_reduction_under_light_marking() {
        // DCTCP's reduction should be far gentler than halving when few
        // bytes are marked — the property that keeps throughput high at
        // the 120KB ECN threshold.
        let mut dctcp = Dctcp::new(MSS);
        let mut reno = Reno::new(MSS);
        // Warm both to the same moderate window with clean ACKs.
        for _ in 0..20 {
            let w = dctcp.cwnd();
            dctcp.on_ack(clean_ack(w, 0));
            let w = reno.cwnd();
            reno.on_ack(clean_ack(w, 0));
        }
        // Decay alpha to a small steady-state first.
        for _ in 0..300 {
            let w = dctcp.cwnd();
            dctcp.on_ack(clean_ack(w, 0));
        }
        let d_before = dctcp.cwnd();
        let r_before = reno.cwnd();
        // One lightly-marked window each (5% of bytes marked).
        let w = dctcp.cwnd();
        dctcp.on_ack(AckInfo {
            now: Ns::ZERO,
            acked_bytes: w,
            marked_bytes: w / 20,
            rtt: None,
            in_flight: 0,
        });
        let w = reno.cwnd();
        reno.on_ack(AckInfo {
            now: Ns::ZERO,
            acked_bytes: w,
            marked_bytes: w / 20,
            rtt: None,
            in_flight: 0,
        });
        let d_drop = 1.0 - dctcp.cwnd() as f64 / d_before as f64;
        let r_drop = 1.0 - reno.cwnd() as f64 / r_before as f64;
        assert!(
            d_drop < r_drop / 2.0,
            "dctcp drop {d_drop:.3} vs reno {r_drop:.3}"
        );
    }

    #[test]
    fn dctcp_timeout_collapses() {
        let mut cc = Dctcp::new(MSS);
        cc.on_ack(clean_ack(100_000, 0));
        cc.on_timeout(Ns::ZERO);
        assert_eq!(cc.cwnd(), MSS as u64);
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut cc = Cubic::new(MSS);
        // Grow a few slow-start rounds (keep W_max modest so the cubic
        // plateau time K = cbrt(W_max·(1−β)/C) stays in seconds).
        for _ in 0..4 {
            let w = cc.cwnd();
            cc.on_ack(clean_ack(w, 0));
        }
        let peak = cc.cwnd();
        cc.on_fast_retransmit(Ns::ZERO);
        let floor = cc.cwnd();
        assert!((floor as f64) < peak as f64 * 0.75);
        // Feed ACKs over simulated time; window should climb back to W_max.
        let mut now = Ns::ZERO;
        for _ in 0..4000 {
            now += Ns::from_millis(5);
            cc.on_ack(AckInfo {
                now,
                acked_bytes: MSS as u64,
                marked_bytes: 0,
                rtt: None,
                in_flight: 0,
            });
        }
        assert!(
            cc.cwnd() as f64 >= peak as f64 * 0.9,
            "cwnd {} vs peak {peak}",
            cc.cwnd()
        );
    }

    #[test]
    fn cwnd_never_below_one_mss() {
        for alg in [CcAlgorithm::Dctcp, CcAlgorithm::Cubic, CcAlgorithm::Reno] {
            let mut cc = alg.build(MSS);
            for _ in 0..10 {
                cc.on_timeout(Ns::ZERO);
            }
            assert!(cc.cwnd() >= MSS as u64, "{}", cc.name());
        }
    }
}
