//! End-to-end transport tests: a Sender and Receiver wired through a
//! deterministic delay pipe built on the dcsim event queue, with optional
//! bottleneck-rate limiting and fault injection — the smoltcp-style
//! "loopback" exercise for the sans-io state machines.

use ms_dcsim::fault::DropInjector;
use ms_dcsim::packet::PacketKind;
use ms_dcsim::{Bps, Bytes, EventQueue, FlowId, Link, Ns, Packet};
use ms_transport::{CcAlgorithm, Receiver, Sender, SenderConfig};

#[derive(Debug)]
enum Ev {
    /// Packet arrives at the receiver host.
    ToReceiver(Packet),
    /// Packet arrives back at the sender host.
    ToSender(Packet),
    SenderTimer,
    ReceiverTimer,
}

/// A tiny closed-loop harness: one flow over a bottleneck link and a fixed
/// return delay. Returns (completion_time, sender, receiver).
struct Loopback {
    q: EventQueue<Ev>,
    tx: Sender,
    rx: Receiver,
    bottleneck: Link,
    back_delay: Ns,
    drops: Option<DropInjector>,
    /// Drop exactly these data-packet ordinals (1-based), for surgical
    /// loss tests.
    drop_ordinals: Vec<u64>,
    data_seen: u64,
}

impl Loopback {
    fn new(algorithm: CcAlgorithm, rate: Bps, delay: Ns) -> Self {
        let cfg = SenderConfig {
            algorithm,
            ..SenderConfig::default()
        };
        Loopback {
            q: EventQueue::new(),
            tx: Sender::new(FlowId(1), 100, 0, &cfg),
            rx: Receiver::new(FlowId(1), 0, 100),
            bottleneck: Link::new(rate, delay),
            back_delay: delay,
            drops: None,
            drop_ordinals: Vec::new(),
            data_seen: 0,
        }
    }

    fn send_packets(&mut self, pkts: Vec<Packet>) {
        for p in pkts {
            match p.kind {
                PacketKind::Data => {
                    self.data_seen += 1;
                    if self.drop_ordinals.contains(&self.data_seen) {
                        continue;
                    }
                    if let Some(inj) = &mut self.drops {
                        if inj.should_drop() {
                            continue;
                        }
                    }
                    let (_, arrive) = self.bottleneck.transmit(self.q.now(), p.size);
                    self.q.schedule(arrive, Ev::ToReceiver(p));
                }
                PacketKind::Ack => {
                    let at = self.q.now() + self.back_delay;
                    self.q.schedule(at, Ev::ToSender(p));
                }
                PacketKind::Multicast => unreachable!(),
            }
        }
    }

    fn sync_timers(&mut self) {
        if let Some(t) = self.tx.next_timer() {
            self.q.schedule(t.max(self.q.now()), Ev::SenderTimer);
        }
        if let Some(t) = self.rx.next_timer() {
            self.q.schedule(t.max(self.q.now()), Ev::ReceiverTimer);
        }
    }

    /// Runs until the sender completes or the deadline passes.
    fn run(&mut self, bytes: u64, deadline: Ns) -> Option<Ns> {
        self.tx.push(bytes);
        self.tx.close();
        let first = self.tx.poll_send(Ns::ZERO);
        self.send_packets(first);
        self.sync_timers();

        while let Some((now, ev)) = self.q.pop_until(deadline) {
            match ev {
                Ev::ToReceiver(p) => {
                    let ack = self.rx.on_data(now, &p);
                    self.send_packets(ack.into_iter().collect());
                }
                Ev::ToSender(p) => {
                    let out = self.tx.on_ack(now, &p);
                    self.send_packets(out);
                }
                Ev::SenderTimer => {
                    let out = self.tx.on_timer(now);
                    self.send_packets(out);
                }
                Ev::ReceiverTimer => {
                    let ack = self.rx.on_timer(now);
                    self.send_packets(ack.into_iter().collect());
                }
            }
            self.sync_timers();
            if self.tx.is_complete() {
                return Some(self.q.now());
            }
        }
        None
    }
}

#[test]
fn clean_transfer_completes_for_all_algorithms() {
    for alg in [CcAlgorithm::Dctcp, CcAlgorithm::Cubic, CcAlgorithm::Reno] {
        let mut lb = Loopback::new(alg, Bps(10_000_000_000), Ns::from_micros(20));
        let done = lb
            .run(1_000_000, Ns::from_secs(5))
            .unwrap_or_else(|| panic!("{alg:?} did not complete"));
        // 1 MB at 10 Gbps is 800 µs of serialization; slow start and ACK
        // clocking stretch that, but it must finish well under 50 ms.
        assert!(done < Ns::from_millis(50), "{alg:?} took {done}");
        assert_eq!(lb.rx.stats().bytes_delivered, 1_000_000);
        assert_eq!(lb.tx.stats().bytes_retx, 0, "{alg:?} clean path retx");
    }
}

#[test]
fn throughput_approaches_bottleneck_rate() {
    // 10 MB over a 5 Gbps link, 10 µs delay: ideal time = 16 ms.
    let mut lb = Loopback::new(CcAlgorithm::Dctcp, Bps(5_000_000_000), Ns::from_micros(10));
    let done = lb.run(10_000_000, Ns::from_secs(5)).expect("complete");
    let ideal = Ns::tx_time(Bytes(10_000_000), Bps(5_000_000_000));
    let efficiency = ideal.as_secs_f64() / done.as_secs_f64();
    assert!(
        efficiency > 0.80,
        "efficiency {efficiency:.2} (done {done}, ideal {ideal})"
    );
}

#[test]
fn single_loss_repaired_by_fast_retransmit() {
    let mut lb = Loopback::new(CcAlgorithm::Dctcp, Bps(10_000_000_000), Ns::from_micros(20));
    lb.drop_ordinals = vec![3];
    let done = lb.run(500_000, Ns::from_secs(5)).expect("complete");
    assert_eq!(lb.rx.stats().bytes_delivered, 500_000);
    assert_eq!(lb.tx.stats().fast_retx_events, 1);
    assert_eq!(lb.tx.stats().timeouts, 0, "fast retx should beat the RTO");
    // The repair carried the diagnostic bit and the receiver saw it.
    assert_eq!(lb.rx.stats().retx_bit_packets, 1);
    assert!(done < Ns::from_millis(50));
}

#[test]
fn tail_loss_repaired_by_rto() {
    let mut lb = Loopback::new(CcAlgorithm::Dctcp, Bps(10_000_000_000), Ns::from_micros(20));
    // 3000 bytes = 2 segments; drop the last one (no dupacks possible).
    lb.drop_ordinals = vec![2];
    let done = lb.run(3_000, Ns::from_secs(5)).expect("complete");
    assert_eq!(lb.tx.stats().timeouts, 1);
    assert_eq!(lb.rx.stats().bytes_delivered, 3_000);
    // RTO floor is 4ms; completion must be just past it.
    assert!(
        done >= Ns::from_millis(4) && done < Ns::from_millis(40),
        "{done}"
    );
}

#[test]
fn random_loss_still_completes() {
    for seed in 0..5 {
        let mut lb = Loopback::new(CcAlgorithm::Dctcp, Bps(10_000_000_000), Ns::from_micros(20));
        lb.drops = Some(DropInjector::new(seed, 0.03));
        lb.run(2_000_000, Ns::from_secs(30))
            .unwrap_or_else(|| panic!("seed {seed} did not complete"));
        assert_eq!(lb.rx.stats().bytes_delivered, 2_000_000);
        assert!(lb.tx.stats().bytes_retx > 0, "3% loss must cause retx");
    }
}

#[test]
fn loss_makes_transfer_slower() {
    let clean = {
        let mut lb = Loopback::new(CcAlgorithm::Reno, Bps(10_000_000_000), Ns::from_micros(20));
        lb.run(2_000_000, Ns::from_secs(30)).unwrap()
    };
    let lossy = {
        let mut lb = Loopback::new(CcAlgorithm::Reno, Bps(10_000_000_000), Ns::from_micros(20));
        lb.drops = Some(DropInjector::new(7, 0.05));
        lb.run(2_000_000, Ns::from_secs(30)).unwrap()
    };
    assert!(lossy > clean, "lossy {lossy} <= clean {clean}");
}

#[test]
fn deterministic_under_fixed_seed() {
    let run = |seed| {
        let mut lb = Loopback::new(CcAlgorithm::Dctcp, Bps(10_000_000_000), Ns::from_micros(20));
        lb.drops = Some(DropInjector::new(seed, 0.02));
        let t = lb.run(1_000_000, Ns::from_secs(30)).unwrap();
        (t, lb.tx.stats(), lb.rx.stats().acks_sent)
    };
    assert_eq!(run(42), run(42), "same seed must reproduce bit-for-bit");
}
