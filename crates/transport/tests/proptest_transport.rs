//! Randomized transport tests: reliability under arbitrary loss patterns,
//! receiver reassembly under arbitrary reordering, and congestion-window
//! sanity under arbitrary ACK streams. Inputs come from the repo's
//! deterministic [`SimRng`] (the workspace builds offline, without
//! proptest).

use ms_dcsim::{EventQueue, FlowId, Ns, Packet, SimRng};
use ms_transport::{CcAlgorithm, Receiver, Sender, SenderConfig};

/// Minimal lossy loopback: fixed delay, drop set by data-packet ordinal.
fn transfer_completes(bytes: u64, drop_ordinals: &[u64], alg: CcAlgorithm) -> bool {
    #[derive(Debug)]
    enum Ev {
        ToRx(Packet),
        ToTx(Packet),
        TxTimer,
        RxTimer,
    }
    let cfg = SenderConfig {
        algorithm: alg,
        ..SenderConfig::default()
    };
    let mut tx = Sender::new(FlowId(1), 9, 1, &cfg);
    let mut rx = Receiver::new(FlowId(1), 1, 9);
    let mut q = EventQueue::new();
    let delay = Ns::from_micros(30);
    let mut data_seen = 0u64;

    tx.push(bytes);
    tx.close();

    let send = |q: &mut EventQueue<Ev>, pkts: Vec<Packet>, data_seen: &mut u64| {
        for p in pkts {
            match p.kind {
                ms_dcsim::PacketKind::Data => {
                    *data_seen += 1;
                    if drop_ordinals.contains(data_seen) {
                        continue;
                    }
                    q.schedule_in(delay, Ev::ToRx(p));
                }
                _ => q.schedule_in(delay, Ev::ToTx(p)),
            }
        }
    };

    let first = tx.poll_send(Ns::ZERO);
    send(&mut q, first, &mut data_seen);
    if let Some(t) = tx.next_timer() {
        q.schedule(t, Ev::TxTimer);
    }

    let deadline = Ns::from_secs(60);
    while let Some((now, ev)) = q.pop_until(deadline) {
        match ev {
            Ev::ToRx(p) => {
                let ack = rx.on_data(now, &p);
                send(&mut q, ack.into_iter().collect(), &mut data_seen);
                if let Some(t) = rx.next_timer() {
                    q.schedule(t.max(now), Ev::RxTimer);
                }
            }
            Ev::ToTx(p) => {
                let out = tx.on_ack(now, &p);
                send(&mut q, out, &mut data_seen);
                if let Some(t) = tx.next_timer() {
                    q.schedule(t.max(now), Ev::TxTimer);
                }
            }
            Ev::TxTimer => {
                let out = tx.on_timer(now);
                send(&mut q, out, &mut data_seen);
                if let Some(t) = tx.next_timer() {
                    q.schedule(t.max(now), Ev::TxTimer);
                }
            }
            Ev::RxTimer => {
                let ack = rx.on_timer(now);
                send(&mut q, ack.into_iter().collect(), &mut data_seen);
            }
        }
        if tx.is_complete() {
            return rx.stats().bytes_delivered == bytes;
        }
    }
    false
}

#[test]
fn any_loss_pattern_is_recovered() {
    let mut rng = SimRng::new(0x7A57_0001);
    for _ in 0..48 {
        let bytes = 1_000 + rng.gen_range(199_000);
        // A random set of up to 12 distinct drop ordinals in 1..60.
        let mut drops: Vec<u64> = (0..rng.gen_range(13))
            .map(|_| 1 + rng.gen_range(59))
            .collect();
        drops.sort_unstable();
        drops.dedup();
        assert!(
            transfer_completes(bytes, &drops, CcAlgorithm::Dctcp),
            "transfer stalled: {bytes} bytes, drops {drops:?}"
        );
    }
}

#[test]
fn all_algorithms_survive_burst_loss() {
    // Drop a contiguous run of packets (burst loss, the hard case for
    // cumulative-ACK recovery).
    let mut rng = SimRng::new(0x7A57_0002);
    for _ in 0..48 {
        let start = 1 + rng.gen_range(19);
        let run_len = 1 + rng.gen_range(7);
        let drops: Vec<u64> = (start..start + run_len).collect();
        for alg in [CcAlgorithm::Dctcp, CcAlgorithm::Cubic, CcAlgorithm::Reno] {
            assert!(
                transfer_completes(100_000, &drops, alg),
                "{alg:?} stalled on burst loss {drops:?}"
            );
        }
    }
}

#[test]
fn receiver_reassembles_any_arrival_order() {
    let mut rng = SimRng::new(0x7A57_0003);
    for _ in 0..48 {
        // Fisher-Yates shuffle of 20 segment indices.
        let mut order: Vec<usize> = (0..20).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut rx = Receiver::new(FlowId(1), 1, 9);
        let mut last_ack = 0;
        for (t, &i) in order.iter().enumerate() {
            let pkt = Packet::data(FlowId(1), 9, 1, i as u64 * 1500, 1500);
            if let Some(ack) = rx.on_data(Ns(t as u64 * 1000), &pkt) {
                assert!(ack.seq >= last_ack, "cumulative ACK went backwards");
                last_ack = ack.seq;
            }
        }
        // After all 20 segments arrive (in any order), everything is
        // delivered exactly once.
        assert_eq!(rx.rcv_nxt(), 20 * 1500);
        assert_eq!(rx.stats().bytes_delivered, 20 * 1500);
    }
}

#[test]
fn cwnd_stays_positive_under_arbitrary_acks() {
    let mut rng = SimRng::new(0x7A57_0004);
    for _ in 0..48 {
        let n = 1 + rng.gen_range(99) as usize;
        let acks: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.gen_range(200_000), rng.gen_range(20_000) as u32))
            .collect();
        let cfg = SenderConfig::default();
        let mut tx = Sender::new(FlowId(1), 9, 1, &cfg);
        tx.push(1_000_000);
        tx.poll_send(Ns::ZERO);
        for (i, &(seq, ecn)) in acks.iter().enumerate() {
            let ack = Packet::ack(FlowId(1), 1, 9, seq, ecn);
            tx.on_ack(Ns(i as u64 * 10_000), &ack);
            assert!(
                tx.cwnd() >= ms_dcsim::Bytes(1500),
                "cwnd collapsed below 1 MSS"
            );
            assert!(tx.in_flight() <= 1_000_000);
        }
    }
}
