//! # ms-telemetry — deterministic sim-time observability
//!
//! The paper's core argument is that coarse telemetry hides the events that
//! matter: one-minute switch counters cannot show the millisecond bursts
//! and buffer contention that cause loss (§1, §7.2). This crate removes the
//! same blind spot from the simulator itself. It provides:
//!
//! * [`TraceBus`] — a fixed-capacity, pre-allocated ring buffer of typed
//!   [`TraceEvent`]s (enqueues, drops with a [`DropReason`], ECN marks,
//!   threshold crossings, cwnd changes, RTO firings, sampler window
//!   closes…), each stamped with **simulation time in nanoseconds, never
//!   wall clock**;
//! * [`MetricsRegistry`] — named counters, gauges, and log-linear
//!   [`Histogram`]s with deterministic (insertion-order) iteration, CSV and
//!   JSON export;
//! * [`perfetto`] — a Chrome/Perfetto trace-event JSON writer (open the
//!   output in `ui.perfetto.dev` to see per-queue occupancy tracks and drop
//!   instants), a plain-text top-N summary, and a minimal JSON validator
//!   for smoke gates.
//!
//! ## Determinism contract
//!
//! Everything in this crate is a pure function of the event stream fed to
//! it: no wall clock, no ambient RNG, no hash-ordered collections, and all
//! export formats are rendered from integers with fixed formatting. Two
//! identical-seed simulation runs therefore serialize to **byte-identical**
//! traces — the property the golden tests pin.
//!
//! ## Hot-path contract
//!
//! Instrumented code holds an `Option<`[`SharedTelemetry`]`>`; when it is
//! `None` the per-packet cost is a single branch (mirroring the tc filter's
//! 7 ns disabled path). When attached, [`TraceBus::record`] writes into
//! pre-allocated storage: no allocation, no panic — `simlint` holds it to
//! the same discipline as the switch and sampler hot paths.
//!
//! This crate sits *below* `ms-dcsim` in the dependency graph (the
//! simulator is what gets instrumented), so it is dependency-free and
//! timestamps are raw `u64` nanoseconds rather than `ms_dcsim::Ns`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod forensics;
pub mod metrics;
pub mod perfetto;
pub mod qid;

pub use bus::{DropReason, TraceBus, TraceEvent};
pub use forensics::{DropCause, DropForensic, ForensicStore};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry};
pub use perfetto::{summary, validate_json, write_perfetto, PerfettoMeta};

use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one telemetry session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Capacity of the trace ring in events. The ring is allocated once at
    /// construction; when it wraps, the oldest events are overwritten (the
    /// count of overwritten events is reported by
    /// [`TraceBus::overwritten`]).
    pub ring_capacity: usize,
    /// Capacity of the drop forensics store in records. Zero (the
    /// default) disables per-drop capture entirely — the blackbox is
    /// opt-in so plain traced runs stay byte-identical across versions.
    pub forensic_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // 65536 events ≈ a few MB — enough for the example scenarios'
        // full switch activity without unbounded growth. Forensics are
        // opt-in (see `TelemetryConfig::with_forensics`).
        TelemetryConfig {
            ring_capacity: 1 << 16,
            forensic_capacity: 0,
        }
    }
}

impl TelemetryConfig {
    /// Default forensic store size when the blackbox is switched on:
    /// enough for every drop in the example scenarios.
    pub const DEFAULT_FORENSIC_CAPACITY: usize = 1 << 16;

    /// Returns the config with the drop forensics blackbox enabled at the
    /// default capacity.
    pub fn with_forensics(mut self) -> Self {
        self.forensic_capacity = Self::DEFAULT_FORENSIC_CAPACITY;
        self
    }
}

/// The telemetry hub of one simulation: the trace bus plus the metrics
/// registry, shared across instrumented components via [`SharedTelemetry`].
pub struct Telemetry {
    /// The event trace ring.
    pub bus: TraceBus,
    /// Named counters, gauges, and histograms.
    pub metrics: MetricsRegistry,
    /// The drop forensics blackbox (zero-capacity when disabled).
    pub forensics: ForensicStore,
}

impl Telemetry {
    /// Builds a telemetry hub from configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            bus: TraceBus::with_capacity(cfg.ring_capacity),
            metrics: MetricsRegistry::new(),
            forensics: ForensicStore::with_capacity(cfg.forensic_capacity),
        }
    }

    /// Builds a hub already wrapped in the shared handle that instrumented
    /// components hold.
    pub fn shared(cfg: TelemetryConfig) -> SharedTelemetry {
        Rc::new(RefCell::new(Telemetry::new(cfg)))
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("events", &self.bus.len())
            .field("capacity", &self.bus.capacity())
            .field("recorded", &self.bus.recorded())
            .finish_non_exhaustive()
    }
}

/// Shared handle to a [`Telemetry`] hub.
///
/// The simulation is single-threaded (parallel sweeps build one sim — and
/// one telemetry hub — per worker), so `Rc<RefCell<…>>` gives globally
/// ordered traces without locks; `Option<SharedTelemetry>` being `None` is
/// the disabled fast path.
pub type SharedTelemetry = Rc<RefCell<Telemetry>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_is_one_hub() {
        let t = Telemetry::shared(TelemetryConfig {
            ring_capacity: 8,
            ..TelemetryConfig::default()
        });
        let t2 = t.clone();
        t.borrow_mut()
            .bus
            .record(TraceEvent::RtoFired { ns: 5, flow: 1 });
        assert_eq!(t2.borrow().bus.len(), 1);
    }

    #[test]
    fn debug_is_compact() {
        let t = Telemetry::new(TelemetryConfig::default());
        let s = format!("{t:?}");
        assert!(s.contains("capacity"));
        assert!(s.len() < 200, "debug output must not dump the ring");
    }
}
