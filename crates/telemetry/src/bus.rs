//! The trace bus: typed simulation events in a pre-allocated ring.
//!
//! [`TraceBus::record`] is on the simulator's per-packet path when tracing
//! is enabled, so it follows the same rules `simlint` enforces on the tc
//! filter: the ring is allocated once in the constructor, and recording is
//! a store plus index arithmetic — no allocation, no panic path. When the
//! ring wraps, the **oldest** events are overwritten (a trace is a window
//! onto the tail of the run, like a flight recorder), and the number of
//! lost events is reported so exporters can say so instead of silently
//! presenting a truncated trace as complete.

use ms_units::Bytes;

/// Why the switch (or a fault injector) discarded a packet.
///
/// This is the shared drop taxonomy used by both the switch's
/// `EnqueueOutcome` and [`TraceEvent::PacketDrop`], replacing the earlier
/// boolean-ish "dropped" accounting: the paper's loss analysis (§8)
/// depends on *why* admission failed, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// The quadrant's shared pool physically cannot fit the packet.
    SharedBufferFull,
    /// A static per-queue partition cap rejected the packet
    /// (`SharingPolicy::StaticPartition`).
    PerQueueCap,
    /// The Choudhury–Hahne dynamic threshold rejected the packet: the
    /// queue's shared usage was at or above `α·(B_shared − Q_shared)`.
    DynamicThresholdReject,
    /// Fault injection discarded the packet (the §4.2 NIC firmware-bug
    /// model: loss without switch congestion).
    FaultInjected,
}

impl DropReason {
    /// Human-readable label, used in trace exports and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::SharedBufferFull => "shared-buffer-full",
            DropReason::PerQueueCap => "per-queue-cap",
            DropReason::DynamicThresholdReject => "dynamic-threshold-reject",
            DropReason::FaultInjected => "fault-injected",
        }
    }

    /// Stable numeric code for binary serializations (determinism tests).
    pub fn code(self) -> u8 {
        match self {
            DropReason::SharedBufferFull => 0,
            DropReason::PerQueueCap => 1,
            DropReason::DynamicThresholdReject => 2,
            DropReason::FaultInjected => 3,
        }
    }

    /// All variants, in `code()` order (for summary tables).
    pub const ALL: [DropReason; 4] = [
        DropReason::SharedBufferFull,
        DropReason::PerQueueCap,
        DropReason::DynamicThresholdReject,
        DropReason::FaultInjected,
    ];
}

/// One traced simulation event.
///
/// Every variant carries `ns`: the simulation time in nanoseconds (host
/// components may stamp their *local* skewed clock — still a deterministic
/// function of sim time). Wall-clock time never appears in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was admitted to a switch egress queue.
    PacketEnqueue {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Queue occupancy *after* the enqueue.
        occupancy: Bytes,
        /// Whether the packet was CE-marked on admission.
        marked: bool,
    },
    /// A packet was discarded.
    PacketDrop {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue (or destination server, for host-side drops).
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Why admission refused the packet.
        reason: DropReason,
    },
    /// An ECN-capable packet was CE-marked on enqueue.
    EcnMark {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Queue occupancy at the mark.
        occupancy: Bytes,
    },
    /// Queue occupancy crossed the static ECN threshold.
    ThresholdCross {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Queue occupancy after the crossing operation.
        occupancy: Bytes,
        /// The threshold crossed.
        threshold: Bytes,
        /// `true` when crossing upward (enqueue), `false` downward.
        up: bool,
    },
    /// A packet left a switch egress queue.
    Dequeue {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Queue occupancy *after* the dequeue.
        occupancy: Bytes,
    },
    /// A drain found its queue empty (the egress link went idle).
    DequeueIdle {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
    },
    /// A GRO/LRO super-segment was flushed to the kernel receive path.
    WindowFlush {
        /// Sim time (ns).
        ns: u64,
        /// Receiving server.
        host: u32,
        /// Coalesced super-segment size in bytes.
        bytes: u32,
    },
    /// A sender's congestion window changed.
    CwndChange {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
        /// New congestion window.
        cwnd: Bytes,
    },
    /// A sender's retransmission timeout genuinely fired.
    RtoFired {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A Millisampler run self-terminated (the filter cleared its own
    /// enabled flag after running past its last bucket, §4.1).
    SamplerWindowClose {
        /// Host-clock time (ns).
        ns: u64,
        /// Host whose run completed.
        host: u32,
    },
}

impl TraceEvent {
    /// The event's timestamp in nanoseconds.
    pub fn ns(&self) -> u64 {
        match *self {
            TraceEvent::PacketEnqueue { ns, .. }
            | TraceEvent::PacketDrop { ns, .. }
            | TraceEvent::EcnMark { ns, .. }
            | TraceEvent::ThresholdCross { ns, .. }
            | TraceEvent::Dequeue { ns, .. }
            | TraceEvent::DequeueIdle { ns, .. }
            | TraceEvent::WindowFlush { ns, .. }
            | TraceEvent::CwndChange { ns, .. }
            | TraceEvent::RtoFired { ns, .. }
            | TraceEvent::SamplerWindowClose { ns, .. } => ns,
        }
    }

    /// Short kind label (summary tables, tests).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketEnqueue { .. } => "packet-enqueue",
            TraceEvent::PacketDrop { .. } => "packet-drop",
            TraceEvent::EcnMark { .. } => "ecn-mark",
            TraceEvent::ThresholdCross { .. } => "threshold-cross",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::DequeueIdle { .. } => "dequeue-idle",
            TraceEvent::WindowFlush { .. } => "window-flush",
            TraceEvent::CwndChange { .. } => "cwnd-change",
            TraceEvent::RtoFired { .. } => "rto-fired",
            TraceEvent::SamplerWindowClose { .. } => "sampler-window-close",
        }
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
pub struct TraceBus {
    /// Pre-filled storage; `head`/`len` delimit the valid window.
    ring: Vec<TraceEvent>,
    /// Next write index.
    head: usize,
    /// Number of valid events (≤ capacity).
    len: usize,
    /// Total `record` calls ever.
    recorded: u64,
    /// Events lost to ring wrap-around.
    overwritten: u64,
}

/// Filler for unwritten slots (never observable through `iter`).
const FILLER: TraceEvent = TraceEvent::DequeueIdle { ns: 0, queue: 0 };

impl TraceBus {
    /// Allocates a ring of `capacity` events. All allocation happens here;
    /// [`TraceBus::record`] never touches the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBus {
            ring: vec![FILLER; capacity],
            head: 0,
            len: 0,
            recorded: 0,
            overwritten: 0,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wrap-around (oldest-first overwrite).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Records one event. The per-event hot path: a bounded store plus
    /// index bookkeeping — no allocation, no panic (`head` is always in
    /// range by construction; a zero-capacity ring only counts).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        let cap = self.ring.len();
        if cap == 0 {
            self.overwritten += 1;
            return;
        }
        self.ring[self.head] = ev;
        self.head += 1;
        if self.head == cap {
            self.head = 0;
        }
        if self.len < cap {
            self.len += 1;
        } else {
            self.overwritten += 1;
        }
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = if self.len < self.ring.len() {
            // Not yet wrapped: valid events are `[0, len)` and `head == len`.
            (&self.ring[..self.len], &self.ring[..0])
        } else {
            // Wrapped: oldest at `head`, newest just before it.
            (&self.ring[self.head..], &self.ring[..self.head])
        };
        older.iter().chain(newer.iter())
    }

    /// Forgets all held events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

// The ring itself (up to 2^16 events) is deliberately left out of Debug.
#[allow(clippy::missing_fields_in_debug)]
impl std::fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBus")
            .field("len", &self.len)
            .field("capacity", &self.ring.len())
            .field("recorded", &self.recorded)
            .field("overwritten", &self.overwritten)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> TraceEvent {
        TraceEvent::RtoFired { ns, flow: 7 }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..3 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.overwritten(), 0);
    }

    #[test]
    fn wraps_overwriting_oldest() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..10 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "keeps the newest window");
        assert_eq!(bus.len(), 4);
        assert_eq!(bus.recorded(), 10);
        assert_eq!(bus.overwritten(), 6);
    }

    #[test]
    fn exact_fill_boundary_is_chronological() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..4 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(bus.overwritten(), 0);
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut bus = TraceBus::with_capacity(0);
        bus.record(ev(1));
        assert!(bus.is_empty());
        assert_eq!(bus.recorded(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut bus = TraceBus::with_capacity(2);
        bus.record(ev(1));
        bus.clear();
        assert!(bus.is_empty());
        assert_eq!(bus.recorded(), 1);
        bus.record(ev(2));
        assert_eq!(bus.iter().count(), 1);
    }

    #[test]
    fn drop_reason_codes_are_stable_and_distinct() {
        let codes: Vec<u8> = DropReason::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
        let mut labels: Vec<&str> = DropReason::ALL.iter().map(|r| r.as_str()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn every_event_reports_its_timestamp_and_kind() {
        let events = [
            TraceEvent::PacketEnqueue {
                ns: 1,
                queue: 0,
                size: 1500,
                occupancy: Bytes(1500),
                marked: false,
            },
            TraceEvent::PacketDrop {
                ns: 2,
                queue: 0,
                size: 1500,
                reason: DropReason::DynamicThresholdReject,
            },
            TraceEvent::EcnMark {
                ns: 3,
                queue: 0,
                occupancy: Bytes::ZERO,
            },
            TraceEvent::ThresholdCross {
                ns: 4,
                queue: 0,
                occupancy: Bytes::ZERO,
                threshold: Bytes::ZERO,
                up: true,
            },
            TraceEvent::Dequeue {
                ns: 5,
                queue: 0,
                size: 0,
                occupancy: Bytes::ZERO,
            },
            TraceEvent::DequeueIdle { ns: 6, queue: 0 },
            TraceEvent::WindowFlush {
                ns: 7,
                host: 0,
                bytes: 0,
            },
            TraceEvent::CwndChange {
                ns: 8,
                flow: 0,
                cwnd: Bytes::ZERO,
            },
            TraceEvent::RtoFired { ns: 9, flow: 0 },
            TraceEvent::SamplerWindowClose { ns: 10, host: 0 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ns(), i as u64 + 1);
        }
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "kind labels must be distinct");
    }
}
