//! The trace bus: typed simulation events in a pre-allocated ring.
//!
//! [`TraceBus::record`] is on the simulator's per-packet path when tracing
//! is enabled, so it follows the same rules `simlint` enforces on the tc
//! filter: the ring is allocated once in the constructor, and recording is
//! a store plus index arithmetic — no allocation, no panic path. When the
//! ring wraps, the **oldest** events are overwritten (a trace is a window
//! onto the tail of the run, like a flight recorder), and the number of
//! lost events is reported so exporters can say so instead of silently
//! presenting a truncated trace as complete.

use crate::forensics::DropCause;
use ms_units::Bytes;

/// Why the switch (or a fault injector) discarded a packet.
///
/// This is the shared drop taxonomy used by both the switch's
/// `EnqueueOutcome` and [`TraceEvent::PacketDrop`], replacing the earlier
/// boolean-ish "dropped" accounting: the paper's loss analysis (§8)
/// depends on *why* admission failed, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// The quadrant's shared pool physically cannot fit the packet.
    SharedBufferFull,
    /// A static per-queue partition cap rejected the packet
    /// (the `StaticPartition` buffer policy).
    PerQueueCap,
    /// The Choudhury–Hahne dynamic threshold rejected the packet: the
    /// queue's shared usage was at or above `α·(B_shared − Q_shared)`.
    DynamicThresholdReject,
    /// Fault injection discarded the packet (the §4.2 NIC firmware-bug
    /// model: loss without switch congestion).
    FaultInjected,
    /// The FB-style flexible-bounds ceiling rejected the packet: the
    /// queue's shared usage was over the even split of the pool across
    /// the quadrant's active queues (`FlexibleBounds` buffer policy).
    FlexibleBoundsReject,
    /// The BShare-style delay target rejected the packet: admitting it
    /// would push the queue's estimated queueing delay past the target
    /// (`DelayDriven` buffer policy).
    DelayTargetExceeded,
}

impl DropReason {
    /// Human-readable label, used in trace exports and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::SharedBufferFull => "shared-buffer-full",
            DropReason::PerQueueCap => "per-queue-cap",
            DropReason::DynamicThresholdReject => "dynamic-threshold-reject",
            DropReason::FaultInjected => "fault-injected",
            DropReason::FlexibleBoundsReject => "flexible-bounds-reject",
            DropReason::DelayTargetExceeded => "delay-target-exceeded",
        }
    }

    /// Stable numeric code for binary serializations (determinism tests).
    pub fn code(self) -> u8 {
        match self {
            DropReason::SharedBufferFull => 0,
            DropReason::PerQueueCap => 1,
            DropReason::DynamicThresholdReject => 2,
            DropReason::FaultInjected => 3,
            DropReason::FlexibleBoundsReject => 4,
            DropReason::DelayTargetExceeded => 5,
        }
    }

    /// All variants, in `code()` order (for summary tables).
    pub const ALL: [DropReason; 6] = [
        DropReason::SharedBufferFull,
        DropReason::PerQueueCap,
        DropReason::DynamicThresholdReject,
        DropReason::FaultInjected,
        DropReason::FlexibleBoundsReject,
        DropReason::DelayTargetExceeded,
    ];
}

/// One traced simulation event.
///
/// Every variant carries `ns`: the simulation time in nanoseconds (host
/// components may stamp their *local* skewed clock — still a deterministic
/// function of sim time). Wall-clock time never appears in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was admitted to a switch egress queue.
    PacketEnqueue {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Queue occupancy *after* the enqueue.
        occupancy: Bytes,
        /// Whether the packet was CE-marked on admission.
        marked: bool,
    },
    /// A packet was discarded.
    PacketDrop {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue (or destination server, for host-side drops).
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Why admission refused the packet.
        reason: DropReason,
    },
    /// An ECN-capable packet was CE-marked on enqueue.
    EcnMark {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Queue occupancy at the mark.
        occupancy: Bytes,
    },
    /// Queue occupancy crossed the static ECN threshold.
    ThresholdCross {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Queue occupancy after the crossing operation.
        occupancy: Bytes,
        /// The threshold crossed.
        threshold: Bytes,
        /// `true` when crossing upward (enqueue), `false` downward.
        up: bool,
    },
    /// A packet left a switch egress queue.
    Dequeue {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
        /// Packet size in bytes.
        size: u32,
        /// Queue occupancy *after* the dequeue.
        occupancy: Bytes,
    },
    /// A drain found its queue empty (the egress link went idle).
    DequeueIdle {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue index.
        queue: u32,
    },
    /// A GRO/LRO super-segment was flushed to the kernel receive path.
    WindowFlush {
        /// Sim time (ns).
        ns: u64,
        /// Receiving server.
        host: u32,
        /// Coalesced super-segment size in bytes.
        bytes: u32,
    },
    /// A sender's congestion window changed.
    CwndChange {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
        /// New congestion window.
        cwnd: Bytes,
    },
    /// A sender's retransmission timeout genuinely fired.
    RtoFired {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A Millisampler run self-terminated (the filter cleared its own
    /// enabled flag after running past its last bucket, §4.1).
    SamplerWindowClose {
        /// Host-clock time (ns).
        ns: u64,
        /// Host whose run completed.
        host: u32,
    },
    /// A Millisampler run observed its first packet (the filter latched
    /// its window start; pairs with [`TraceEvent::SamplerWindowClose`]).
    SamplerWindowOpen {
        /// Host-clock time (ns).
        ns: u64,
        /// Host whose run started.
        host: u32,
    },
    /// A flow sent its first data packet (span root: flow → burst →
    /// recovery/HoL children share the flow id).
    FlowSpanStart {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A flow fully acknowledged its last byte (its FCT endpoint).
    FlowSpanEnd {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A sender's in-flight window went 0 → >0 (a burst began).
    BurstSpanStart {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A sender's in-flight window drained back to 0 (the burst ended).
    BurstSpanEnd {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A sender entered loss recovery.
    RecoverySpanStart {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
        /// `true` when triggered by a retransmission timeout; `false`
        /// for dup-ack fast retransmit.
        rto: bool,
    },
    /// A sender left loss recovery (the recovery point was acked).
    RecoverySpanEnd {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A receiver started buffering out-of-order data (head-of-line wait).
    HolSpanStart {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A receiver's out-of-order buffer drained (head-of-line released).
    HolSpanEnd {
        /// Sim time (ns).
        ns: u64,
        /// Flow id.
        flow: u64,
    },
    /// A drop was classified by the forensics blackbox (the full record
    /// lives in the [`crate::ForensicStore`]; this marks it on the
    /// timeline).
    ForensicDrop {
        /// Sim time (ns).
        ns: u64,
        /// Egress queue (or off-switch sentinel).
        queue: u32,
        /// The dropping flow.
        flow: u64,
        /// The §8 attribution class.
        cause: DropCause,
    },
}

impl TraceEvent {
    /// The event's timestamp in nanoseconds.
    pub fn ns(&self) -> u64 {
        match *self {
            TraceEvent::PacketEnqueue { ns, .. }
            | TraceEvent::PacketDrop { ns, .. }
            | TraceEvent::EcnMark { ns, .. }
            | TraceEvent::ThresholdCross { ns, .. }
            | TraceEvent::Dequeue { ns, .. }
            | TraceEvent::DequeueIdle { ns, .. }
            | TraceEvent::WindowFlush { ns, .. }
            | TraceEvent::CwndChange { ns, .. }
            | TraceEvent::RtoFired { ns, .. }
            | TraceEvent::SamplerWindowClose { ns, .. }
            | TraceEvent::SamplerWindowOpen { ns, .. }
            | TraceEvent::FlowSpanStart { ns, .. }
            | TraceEvent::FlowSpanEnd { ns, .. }
            | TraceEvent::BurstSpanStart { ns, .. }
            | TraceEvent::BurstSpanEnd { ns, .. }
            | TraceEvent::RecoverySpanStart { ns, .. }
            | TraceEvent::RecoverySpanEnd { ns, .. }
            | TraceEvent::HolSpanStart { ns, .. }
            | TraceEvent::HolSpanEnd { ns, .. }
            | TraceEvent::ForensicDrop { ns, .. } => ns,
        }
    }

    /// Short kind label (summary tables, tests).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketEnqueue { .. } => "packet-enqueue",
            TraceEvent::PacketDrop { .. } => "packet-drop",
            TraceEvent::EcnMark { .. } => "ecn-mark",
            TraceEvent::ThresholdCross { .. } => "threshold-cross",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::DequeueIdle { .. } => "dequeue-idle",
            TraceEvent::WindowFlush { .. } => "window-flush",
            TraceEvent::CwndChange { .. } => "cwnd-change",
            TraceEvent::RtoFired { .. } => "rto-fired",
            TraceEvent::SamplerWindowClose { .. } => "sampler-window-close",
            TraceEvent::SamplerWindowOpen { .. } => "sampler-window-open",
            TraceEvent::FlowSpanStart { .. } => "flow-span-start",
            TraceEvent::FlowSpanEnd { .. } => "flow-span-end",
            TraceEvent::BurstSpanStart { .. } => "burst-span-start",
            TraceEvent::BurstSpanEnd { .. } => "burst-span-end",
            TraceEvent::RecoverySpanStart { .. } => "recovery-span-start",
            TraceEvent::RecoverySpanEnd { .. } => "recovery-span-end",
            TraceEvent::HolSpanStart { .. } => "hol-span-start",
            TraceEvent::HolSpanEnd { .. } => "hol-span-end",
            TraceEvent::ForensicDrop { .. } => "forensic-drop",
        }
    }

    /// Stable one-byte kind code, used to pack the forensic flight
    /// recorder's `recent_kinds` field. Zero is reserved for "no event".
    pub fn kind_code(&self) -> u8 {
        match self {
            TraceEvent::PacketEnqueue { .. } => 1,
            TraceEvent::PacketDrop { .. } => 2,
            TraceEvent::EcnMark { .. } => 3,
            TraceEvent::ThresholdCross { .. } => 4,
            TraceEvent::Dequeue { .. } => 5,
            TraceEvent::DequeueIdle { .. } => 6,
            TraceEvent::WindowFlush { .. } => 7,
            TraceEvent::CwndChange { .. } => 8,
            TraceEvent::RtoFired { .. } => 9,
            TraceEvent::SamplerWindowClose { .. } => 10,
            TraceEvent::SamplerWindowOpen { .. } => 11,
            TraceEvent::FlowSpanStart { .. } => 12,
            TraceEvent::FlowSpanEnd { .. } => 13,
            TraceEvent::BurstSpanStart { .. } => 14,
            TraceEvent::BurstSpanEnd { .. } => 15,
            TraceEvent::RecoverySpanStart { .. } => 16,
            TraceEvent::RecoverySpanEnd { .. } => 17,
            TraceEvent::HolSpanStart { .. } => 18,
            TraceEvent::HolSpanEnd { .. } => 19,
            TraceEvent::ForensicDrop { .. } => 20,
        }
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
pub struct TraceBus {
    /// Pre-filled storage; `head`/`len` delimit the valid window.
    ring: Vec<TraceEvent>,
    /// Next write index.
    head: usize,
    /// Number of valid events (≤ capacity).
    len: usize,
    /// Total `record` calls ever.
    recorded: u64,
    /// Events lost to ring wrap-around.
    overwritten: u64,
}

/// Filler for unwritten slots (never observable through `iter`).
const FILLER: TraceEvent = TraceEvent::DequeueIdle { ns: 0, queue: 0 };

impl TraceBus {
    /// Allocates a ring of `capacity` events. All allocation happens here;
    /// [`TraceBus::record`] never touches the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBus {
            ring: vec![FILLER; capacity],
            head: 0,
            len: 0,
            recorded: 0,
            overwritten: 0,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wrap-around (oldest-first overwrite).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Records one event. The per-event hot path: a bounded store plus
    /// index bookkeeping — no allocation, no panic (`head` is always in
    /// range by construction; a zero-capacity ring only counts).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        let cap = self.ring.len();
        if cap == 0 {
            self.overwritten += 1;
            return;
        }
        self.ring[self.head] = ev;
        self.head += 1;
        if self.head == cap {
            self.head = 0;
        }
        if self.len < cap {
            self.len += 1;
        } else {
            self.overwritten += 1;
        }
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = if self.len < self.ring.len() {
            // Not yet wrapped: valid events are `[0, len)` and `head == len`.
            (&self.ring[..self.len], &self.ring[..0])
        } else {
            // Wrapped: oldest at `head`, newest just before it.
            (&self.ring[self.head..], &self.ring[..self.head])
        };
        older.iter().chain(newer.iter())
    }

    /// The `i`-th most recent event (0 = newest), O(1).
    ///
    /// Used by the drop forensics capture to pack a micro flight recorder
    /// of the events that immediately preceded a drop; on the per-drop
    /// path, so no allocation and no panic (bounds are checked up front).
    #[inline]
    pub fn recent(&self, i: usize) -> Option<&TraceEvent> {
        if i >= self.len {
            return None;
        }
        let cap = self.ring.len();
        // Newest lives just before `head`; walk backwards modulo cap.
        let idx = (self.head + cap - 1 - i) % cap;
        Some(&self.ring[idx])
    }

    /// Forgets all held events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

// The ring itself (up to 2^16 events) is deliberately left out of Debug.
#[allow(clippy::missing_fields_in_debug)]
impl std::fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBus")
            .field("len", &self.len)
            .field("capacity", &self.ring.len())
            .field("recorded", &self.recorded)
            .field("overwritten", &self.overwritten)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> TraceEvent {
        TraceEvent::RtoFired { ns, flow: 7 }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..3 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.overwritten(), 0);
    }

    #[test]
    fn wraps_overwriting_oldest() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..10 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "keeps the newest window");
        assert_eq!(bus.len(), 4);
        assert_eq!(bus.recorded(), 10);
        assert_eq!(bus.overwritten(), 6);
    }

    #[test]
    fn exact_fill_boundary_is_chronological() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..4 {
            bus.record(ev(i));
        }
        let got: Vec<u64> = bus.iter().map(TraceEvent::ns).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(bus.overwritten(), 0);
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut bus = TraceBus::with_capacity(0);
        bus.record(ev(1));
        assert!(bus.is_empty());
        assert_eq!(bus.recorded(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut bus = TraceBus::with_capacity(2);
        bus.record(ev(1));
        bus.clear();
        assert!(bus.is_empty());
        assert_eq!(bus.recorded(), 1);
        bus.record(ev(2));
        assert_eq!(bus.iter().count(), 1);
    }

    #[test]
    fn drop_reason_codes_are_stable_and_distinct() {
        let codes: Vec<u8> = DropReason::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4, 5]);
        let mut labels: Vec<&str> = DropReason::ALL.iter().map(|r| r.as_str()).collect();
        labels.dedup();
        assert_eq!(labels.len(), DropReason::ALL.len());
    }

    #[test]
    fn every_event_reports_its_timestamp_and_kind() {
        let events = [
            TraceEvent::PacketEnqueue {
                ns: 1,
                queue: 0,
                size: 1500,
                occupancy: Bytes(1500),
                marked: false,
            },
            TraceEvent::PacketDrop {
                ns: 2,
                queue: 0,
                size: 1500,
                reason: DropReason::DynamicThresholdReject,
            },
            TraceEvent::EcnMark {
                ns: 3,
                queue: 0,
                occupancy: Bytes::ZERO,
            },
            TraceEvent::ThresholdCross {
                ns: 4,
                queue: 0,
                occupancy: Bytes::ZERO,
                threshold: Bytes::ZERO,
                up: true,
            },
            TraceEvent::Dequeue {
                ns: 5,
                queue: 0,
                size: 0,
                occupancy: Bytes::ZERO,
            },
            TraceEvent::DequeueIdle { ns: 6, queue: 0 },
            TraceEvent::WindowFlush {
                ns: 7,
                host: 0,
                bytes: 0,
            },
            TraceEvent::CwndChange {
                ns: 8,
                flow: 0,
                cwnd: Bytes::ZERO,
            },
            TraceEvent::RtoFired { ns: 9, flow: 0 },
            TraceEvent::SamplerWindowClose { ns: 10, host: 0 },
            TraceEvent::SamplerWindowOpen { ns: 11, host: 0 },
            TraceEvent::FlowSpanStart { ns: 12, flow: 0 },
            TraceEvent::FlowSpanEnd { ns: 13, flow: 0 },
            TraceEvent::BurstSpanStart { ns: 14, flow: 0 },
            TraceEvent::BurstSpanEnd { ns: 15, flow: 0 },
            TraceEvent::RecoverySpanStart {
                ns: 16,
                flow: 0,
                rto: false,
            },
            TraceEvent::RecoverySpanEnd { ns: 17, flow: 0 },
            TraceEvent::HolSpanStart { ns: 18, flow: 0 },
            TraceEvent::HolSpanEnd { ns: 19, flow: 0 },
            TraceEvent::ForensicDrop {
                ns: 20,
                queue: 0,
                flow: 0,
                cause: DropCause::CrossContention,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ns(), i as u64 + 1);
        }
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "kind labels must be distinct");
        // Kind codes are 1-based (0 = "no event" in packed forensics) and
        // mutually distinct.
        let mut codes: Vec<u8> = events.iter().map(TraceEvent::kind_code).collect();
        assert!(codes.iter().all(|&c| c > 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), events.len(), "kind codes must be distinct");
    }

    #[test]
    fn recent_walks_newest_first_across_the_wrap() {
        let mut bus = TraceBus::with_capacity(4);
        for i in 0..6 {
            bus.record(ev(i));
        }
        // Holds [2, 3, 4, 5]; recent(0) is the newest.
        for i in 0..4 {
            assert_eq!(bus.recent(i).map(TraceEvent::ns), Some(5 - i as u64));
        }
        assert_eq!(bus.recent(4), None);
        assert_eq!(TraceBus::with_capacity(0).recent(0), None);
    }
}
