//! Chrome/Perfetto trace-event JSON export, a plain-text summary, and a
//! minimal JSON validator for smoke gates.
//!
//! The exporter renders the trace ring into the [trace-event format]
//! understood by `ui.perfetto.dev` and `chrome://tracing`: per-queue
//! occupancy counter tracks (`ph:"C"`), per-flow cwnd tracks, and instant
//! events (`ph:"i"`) for drops, ECN marks, threshold crossings, RTO
//! firings, window flushes, and sampler window closes. Timestamps are the
//! event's simulation time converted from nanoseconds to microseconds with
//! fixed three-decimal formatting, so identical event streams serialize to
//! byte-identical JSON.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::{self, Write};

use crate::bus::{TraceBus, TraceEvent};
use crate::metrics::{escape_json, Histogram};

/// Naming metadata for the exported trace.
#[derive(Debug, Clone)]
pub struct PerfettoMeta {
    /// Process name shown for the switch/queue tracks (e.g. `"tor-switch"`).
    pub process_name: String,
}

impl Default for PerfettoMeta {
    fn default() -> Self {
        PerfettoMeta {
            process_name: String::from("rack-sim"),
        }
    }
}

/// Formats a nanosecond sim timestamp as the microsecond `ts` field with a
/// fixed three-decimal fraction (`1234.567`), keeping output byte-stable.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn write_counter<W: Write>(
    w: &mut W,
    first: &mut bool,
    ns: u64,
    name: &str,
    arg: &str,
    value: u64,
) -> io::Result<()> {
    let sep = if *first { "" } else { ",\n" };
    *first = false;
    write!(
        w,
        "{sep}{{\"ph\":\"C\",\"pid\":1,\"name\":\"{name}\",\"ts\":{},\"args\":{{\"{arg}\":{value}}}}}",
        ts_us(ns)
    )
}

fn write_instant<W: Write>(
    w: &mut W,
    first: &mut bool,
    ns: u64,
    tid: u64,
    name: &str,
    args: &str,
) -> io::Result<()> {
    let sep = if *first { "" } else { ",\n" };
    *first = false;
    write!(
        w,
        "{sep}{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\"args\":{{{args}}}}}",
        ts_us(ns)
    )
}

/// Writes one half of a duration event (`ph:"B"` begin / `ph:"E"` end).
/// Spans for the same flow share a tid, so Perfetto nests them (flow ⊃
/// burst ⊃ recovery/HoL) by interval containment.
fn write_span<W: Write>(
    w: &mut W,
    first: &mut bool,
    ns: u64,
    tid: u64,
    phase: char,
    name: &str,
    args: &str,
) -> io::Result<()> {
    let sep = if *first { "" } else { ",\n" };
    *first = false;
    write!(
        w,
        "{sep}{{\"ph\":\"{phase}\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\"args\":{{{args}}}}}",
        ts_us(ns)
    )
}

/// Thread id hosting a flow's span hierarchy (one track per flow).
fn flow_tid(flow: u64) -> u64 {
    300 + flow
}

/// Track label for a queue id: legacy single-rack ids keep the
/// historical `queue<N>` name; packed region ids render per switch
/// (`agg5.q2`, `spine0.q3` — see [`crate::qid`]).
fn queue_track(queue: u32) -> String {
    if queue <= crate::qid::QID_PORT_MASK {
        format!("queue{queue}")
    } else {
        crate::qid::qid_name(queue)
    }
}

/// Serializes the trace ring as Chrome/Perfetto trace-event JSON.
///
/// Occupancy and cwnd become counter tracks; drops, marks, crossings,
/// flushes, RTOs, and sampler closes become instant events. `DequeueIdle`
/// events carry no state change and are skipped (they still show up in
/// [`summary`] counts). Output depends only on the event stream, so two
/// identical runs produce byte-identical files.
pub fn write_perfetto<W: Write>(w: &mut W, bus: &TraceBus, meta: &PerfettoMeta) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        escape_json(&meta.process_name)
    )?;
    let mut first = false;
    for ev in bus.iter() {
        match *ev {
            TraceEvent::PacketEnqueue {
                ns,
                queue,
                occupancy,
                ..
            }
            | TraceEvent::Dequeue {
                ns,
                queue,
                occupancy,
                ..
            } => {
                let name = format!("{}.occupancy", queue_track(queue));
                write_counter(w, &mut first, ns, &name, "bytes", occupancy.as_u64())?;
            }
            TraceEvent::PacketDrop {
                ns,
                queue,
                size,
                reason,
            } => {
                let name = format!("drop:{}", reason.as_str());
                let args = format!("\"queue\":{queue},\"size\":{size}");
                write_instant(w, &mut first, ns, u64::from(queue), &name, &args)?;
            }
            TraceEvent::EcnMark {
                ns,
                queue,
                occupancy,
            } => {
                let args = format!("\"queue\":{queue},\"occupancy\":{}", occupancy.as_u64());
                write_instant(w, &mut first, ns, u64::from(queue), "ecn-mark", &args)?;
            }
            TraceEvent::ThresholdCross {
                ns,
                queue,
                occupancy,
                threshold,
                up,
            } => {
                let name = if up {
                    "threshold-cross:up"
                } else {
                    "threshold-cross:down"
                };
                let args = format!(
                    "\"queue\":{queue},\"occupancy\":{},\"threshold\":{}",
                    occupancy.as_u64(),
                    threshold.as_u64()
                );
                write_instant(w, &mut first, ns, u64::from(queue), name, &args)?;
            }
            TraceEvent::DequeueIdle { .. } => {}
            TraceEvent::WindowFlush { ns, host, bytes } => {
                let args = format!("\"host\":{host},\"bytes\":{bytes}");
                write_instant(w, &mut first, ns, 100 + u64::from(host), "gro-flush", &args)?;
            }
            TraceEvent::CwndChange { ns, flow, cwnd } => {
                let name = format!("flow{flow}.cwnd");
                write_counter(w, &mut first, ns, &name, "bytes", cwnd.as_u64())?;
            }
            TraceEvent::RtoFired { ns, flow } => {
                let args = format!("\"flow\":{flow}");
                write_instant(w, &mut first, ns, 200, "rto-fired", &args)?;
            }
            TraceEvent::SamplerWindowClose { ns, host } => {
                let args = format!("\"host\":{host}");
                write_instant(
                    w,
                    &mut first,
                    ns,
                    100 + u64::from(host),
                    "sampler-window-close",
                    &args,
                )?;
            }
            TraceEvent::SamplerWindowOpen { ns, host } => {
                let args = format!("\"host\":{host}");
                write_instant(
                    w,
                    &mut first,
                    ns,
                    100 + u64::from(host),
                    "sampler-window-open",
                    &args,
                )?;
            }
            TraceEvent::FlowSpanStart { ns, flow } => {
                let args = format!("\"flow\":{flow}");
                write_span(w, &mut first, ns, flow_tid(flow), 'B', "flow", &args)?;
            }
            TraceEvent::FlowSpanEnd { ns, flow } => {
                write_span(w, &mut first, ns, flow_tid(flow), 'E', "flow", "")?;
            }
            TraceEvent::BurstSpanStart { ns, flow } => {
                let args = format!("\"flow\":{flow}");
                write_span(w, &mut first, ns, flow_tid(flow), 'B', "burst", &args)?;
            }
            TraceEvent::BurstSpanEnd { ns, flow } => {
                write_span(w, &mut first, ns, flow_tid(flow), 'E', "burst", "")?;
            }
            TraceEvent::RecoverySpanStart { ns, flow, rto } => {
                let args = format!(
                    "\"flow\":{flow},\"trigger\":\"{}\"",
                    if rto { "rto" } else { "fast-retx" }
                );
                write_span(w, &mut first, ns, flow_tid(flow), 'B', "recovery", &args)?;
            }
            TraceEvent::RecoverySpanEnd { ns, flow } => {
                write_span(w, &mut first, ns, flow_tid(flow), 'E', "recovery", "")?;
            }
            TraceEvent::HolSpanStart { ns, flow } => {
                let args = format!("\"flow\":{flow}");
                write_span(w, &mut first, ns, flow_tid(flow), 'B', "hol-wait", &args)?;
            }
            TraceEvent::HolSpanEnd { ns, flow } => {
                write_span(w, &mut first, ns, flow_tid(flow), 'E', "hol-wait", "")?;
            }
            TraceEvent::ForensicDrop {
                ns,
                queue,
                flow,
                cause,
            } => {
                let name = format!("forensic:{}", cause.as_str());
                let args = format!("\"queue\":{queue},\"flow\":{flow}");
                write_instant(w, &mut first, ns, u64::from(queue), &name, &args)?;
            }
        }
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

/// Renders a plain-text summary of the trace ring: total/overwritten event
/// counts, a per-kind breakdown, and the top-`n` queues by drop count.
pub fn summary(bus: &TraceBus, top_n: usize) -> String {
    use std::fmt::Write;
    let mut kinds: Vec<(&'static str, u64)> = Vec::new();
    let mut drops_by_queue: Vec<(u32, u64)> = Vec::new();
    let mut span_starts: Vec<(u64, u64)> = Vec::new();
    let mut fct = Histogram::new();
    for ev in bus.iter() {
        let kind = ev.kind();
        match kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, c)) => *c += 1,
            None => kinds.push((kind, 1)),
        }
        match *ev {
            TraceEvent::PacketDrop { queue, .. } => {
                match drops_by_queue.iter_mut().find(|(q, _)| *q == queue) {
                    Some((_, c)) => *c += 1,
                    None => drops_by_queue.push((queue, 1)),
                }
            }
            TraceEvent::FlowSpanStart { ns, flow } => span_starts.push((flow, ns)),
            TraceEvent::FlowSpanEnd { ns, flow } => {
                if let Some(i) = span_starts.iter().position(|(f, _)| *f == flow) {
                    let (_, start) = span_starts.swap_remove(i);
                    fct.record(ns.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    // Descending by count, then by name/queue for a total deterministic order.
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    drops_by_queue.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events recorded, {} in ring, {} overwritten",
        bus.recorded(),
        bus.len(),
        bus.overwritten()
    );
    for (kind, count) in &kinds {
        let _ = writeln!(out, "  {kind:<24} {count}");
    }
    if !drops_by_queue.is_empty() {
        let _ = writeln!(out, "top queues by drops:");
        for (queue, count) in drops_by_queue.iter().take(top_n) {
            let name = if *queue <= crate::qid::QID_PORT_MASK {
                queue.to_string()
            } else {
                crate::qid::qid_name(*queue)
            };
            let _ = writeln!(out, "  queue {name:<4} {count}");
        }
    }
    if fct.total() > 0 {
        let _ = writeln!(
            out,
            "flow spans: {} complete, fct ns p50={} p99={} p999={}",
            fct.total(),
            fct.percentile(0.50),
            fct.percentile(0.99),
            fct.percentile(0.999)
        );
    }
    out
}

/// Minimal JSON validity check (no external dependencies): verifies the
/// input is one complete, syntactically well-formed JSON value. Used by the
/// CI smoke gate and the golden tests to assert exported traces parse.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(String::from("unexpected end of input")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape plus escaped byte; \uXXXX hex is benign
            }
            _ => *pos += 1,
        }
    }
    Err(String::from("unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            saw_digit |= c.is_ascii_digit();
            *pos += 1;
        } else {
            break;
        }
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("malformed number at byte {start}"))
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::DropReason;
    use ms_units::Bytes;

    fn sample_bus() -> TraceBus {
        let mut bus = TraceBus::with_capacity(64);
        bus.record(TraceEvent::PacketEnqueue {
            ns: 1_000,
            queue: 2,
            size: 1500,
            occupancy: Bytes(1500),
            marked: false,
        });
        bus.record(TraceEvent::ThresholdCross {
            ns: 1_500,
            queue: 2,
            occupancy: Bytes(130_000),
            threshold: Bytes(120_000),
            up: true,
        });
        bus.record(TraceEvent::EcnMark {
            ns: 1_600,
            queue: 2,
            occupancy: Bytes(130_000),
        });
        bus.record(TraceEvent::PacketDrop {
            ns: 2_000,
            queue: 2,
            size: 1500,
            reason: DropReason::DynamicThresholdReject,
        });
        bus.record(TraceEvent::Dequeue {
            ns: 2_500,
            queue: 2,
            size: 1500,
            occupancy: Bytes::ZERO,
        });
        bus.record(TraceEvent::DequeueIdle {
            ns: 2_600,
            queue: 2,
        });
        bus.record(TraceEvent::CwndChange {
            ns: 3_000,
            flow: 7,
            cwnd: Bytes(29_200),
        });
        bus.record(TraceEvent::RtoFired { ns: 4_000, flow: 7 });
        bus.record(TraceEvent::WindowFlush {
            ns: 5_000,
            host: 3,
            bytes: 64_000,
        });
        bus.record(TraceEvent::SamplerWindowClose { ns: 6_000, host: 3 });
        bus
    }

    #[test]
    fn perfetto_output_is_valid_and_deterministic() {
        let bus = sample_bus();
        let meta = PerfettoMeta::default();
        let mut a = Vec::new();
        write_perfetto(&mut a, &bus, &meta).unwrap();
        let mut b = Vec::new();
        write_perfetto(&mut b, &bus, &meta).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        validate_json(&text).expect("exported trace must be valid JSON");
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("queue2.occupancy"));
        assert!(text.contains("drop:dynamic-threshold-reject"));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"i\""));
        // Dequeue-idle events carry no track state and are skipped.
        assert!(!text.contains("dequeue-idle"));
    }

    #[test]
    fn process_name_is_escaped() {
        let bus = TraceBus::with_capacity(4);
        let meta = PerfettoMeta {
            process_name: String::from("rack\"sim\\v1\n"),
        };
        let mut out = Vec::new();
        write_perfetto(&mut out, &bus, &meta).unwrap();
        let text = String::from_utf8(out).unwrap();
        validate_json(&text).expect("metadata strings must be escaped");
        assert!(text.contains("rack\\\"sim\\\\v1\\u000a"));
    }

    #[test]
    fn span_and_forensic_events_export_as_durations_and_instants() {
        use crate::forensics::DropCause;
        let mut bus = TraceBus::with_capacity(64);
        bus.record(TraceEvent::FlowSpanStart { ns: 1_000, flow: 7 });
        bus.record(TraceEvent::BurstSpanStart { ns: 1_100, flow: 7 });
        bus.record(TraceEvent::RecoverySpanStart {
            ns: 1_200,
            flow: 7,
            rto: false,
        });
        bus.record(TraceEvent::ForensicDrop {
            ns: 1_250,
            queue: 2,
            flow: 7,
            cause: DropCause::CrossContention,
        });
        bus.record(TraceEvent::RecoverySpanEnd { ns: 1_300, flow: 7 });
        bus.record(TraceEvent::BurstSpanEnd { ns: 1_400, flow: 7 });
        bus.record(TraceEvent::HolSpanStart { ns: 1_500, flow: 7 });
        bus.record(TraceEvent::HolSpanEnd { ns: 1_600, flow: 7 });
        bus.record(TraceEvent::SamplerWindowOpen { ns: 1_700, host: 3 });
        bus.record(TraceEvent::FlowSpanEnd { ns: 2_000, flow: 7 });

        let mut out = Vec::new();
        write_perfetto(&mut out, &bus, &PerfettoMeta::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        validate_json(&text).unwrap();
        // Duration halves on the flow's own track (tid 300 + flow).
        assert!(text.contains("\"ph\":\"B\",\"pid\":1,\"tid\":307,\"name\":\"flow\""));
        assert!(text.contains("\"ph\":\"E\",\"pid\":1,\"tid\":307,\"name\":\"flow\""));
        assert!(text.contains("\"name\":\"burst\""));
        assert!(text.contains("\"trigger\":\"fast-retx\""));
        assert!(text.contains("\"name\":\"hol-wait\""));
        assert!(text.contains("forensic:cross-contention"));
        assert!(text.contains("sampler-window-open"));

        // The summary derives flow FCT percentiles from the span pairs.
        let s = summary(&bus, 3);
        assert!(s.contains("flow spans: 1 complete"), "{s}");
        // 1000 ns FCT lands in the bucket whose lower bound is 896.
        assert!(s.contains("p50=896"), "{s}");
    }

    #[test]
    fn ts_is_microseconds_with_fixed_fraction() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(1_234_567), "1234.567");
        assert_eq!(ts_us(2_000), "2.000");
    }

    #[test]
    fn summary_counts_kinds_and_top_queues() {
        let bus = sample_bus();
        let text = summary(&bus, 3);
        assert!(text.contains("10 events recorded"));
        assert!(text.contains("packet-drop"));
        assert!(text.contains("dequeue-idle"), "summary counts every kind");
        assert!(text.contains("top queues by drops:"));
        assert!(text.contains("queue 2"));
    }

    #[test]
    fn validator_accepts_valid_and_rejects_invalid() {
        validate_json("{}").unwrap();
        validate_json("[1, 2.5, -3e2, \"x\\\"y\", true, false, null]").unwrap();
        validate_json("{\"a\":{\"b\":[{}]}}").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn empty_bus_exports_valid_trace() {
        let bus = TraceBus::with_capacity(4);
        let mut out = Vec::new();
        write_perfetto(&mut out, &bus, &PerfettoMeta::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        validate_json(&text).unwrap();
        assert!(text.contains("traceEvents"));
    }
}
