//! The metrics registry: named counters, gauges, and log-linear histograms.
//!
//! Names are interned once (returning a copyable id) and values live in
//! plain `Vec`s, so iteration order is insertion order — deterministic by
//! construction, with no hash-ordered collections anywhere. Histogram
//! recording is bounded integer arithmetic (HDR-style log-linear buckets:
//! four linear sub-buckets per power-of-two octave), cheap enough for
//! per-packet use.

/// Interned id of a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Interned id of a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Interned id of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;

/// Total bucket count: indices 0–3 are exact values 0–3; octaves 2..=63
/// contribute [`SUB_BUCKETS`] each, covering all of `u64`.
pub const NUM_BUCKETS: usize = 4 + 62 * SUB_BUCKETS;

/// A log-linear histogram of `u64` values.
///
/// Relative error is bounded by 1/[`SUB_BUCKETS`] (25 %) at any magnitude,
/// values 0–3 are exact, and the bucket count is a fixed 252 — the layout
/// used for queue depths, burst durations, and drop-run lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its fixed bucket array).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls into.
    ///
    /// `0..=3` map exactly; larger values index `4 + (e−2)·4 + sub` where
    /// `e = ⌊log₂ v⌋` and `sub` is the top two bits below the leading one.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < 4 {
            return value as usize;
        }
        let e = 63 - (value.leading_zeros() as usize);
        4 + (e - 2) * SUB_BUCKETS + (((value >> (e - 2)) & 3) as usize)
    }

    /// Smallest value that lands in bucket `index` (the inverse of
    /// [`Histogram::bucket_index`]; used for export and tests).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index < 4 {
            return index as u64;
        }
        let octave = (index - 4) / SUB_BUCKETS + 2;
        let sub = ((index - 4) % SUB_BUCKETS) as u64;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one observation. Bounded arithmetic; no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// The lower bound of the bucket containing the `p`-quantile
    /// (`0.0 ≤ p ≤ 1.0`), 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lower_bound(i);
            }
        }
        Self::bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower_bound(i), c))
            .collect()
    }
}

/// Registry of named metrics with deterministic iteration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

fn intern<T>(table: &mut Vec<(String, T)>, name: &str, mk: impl FnOnce() -> T) -> usize {
    if let Some(i) = table.iter().position(|(n, _)| n == name) {
        return i;
    }
    table.push((name.to_string(), mk()));
    table.len() - 1
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        CounterId(intern(&mut self.counters, name, || 0))
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Interns (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(intern(&mut self.gauges, name, || 0))
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0].1 = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].1
    }

    /// Interns (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        HistogramId(intern(&mut self.histograms, name, Histogram::new))
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Whether nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// CSV export: `kind,name,field,value` rows in registration order.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},value,{v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},value,{v}");
        }
        for (name, h) in &self.histograms {
            for (field, v) in [
                ("count", h.total()),
                ("sum", h.sum()),
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.percentile(0.50)),
                ("p90", h.percentile(0.90)),
                ("p99", h.percentile(0.99)),
                ("p999", h.percentile(0.999)),
            ] {
                let _ = writeln!(out, "histogram,{name},{field},{v}");
            }
        }
        out
    }

    /// JSON export (deterministic member order = registration order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                escape_json(name),
                h.total(),
                h.sum(),
                h.min(),
                h.max(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.percentile(0.999),
            );
            for (j, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                let sep = if j == 0 { "" } else { "," };
                let _ = write!(out, "{sep}[{lo},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal (shared with
/// the Perfetto exporter's metadata strings).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            // simlint: allow(cast-truncation): char scalar values fit u32 exactly
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                // simlint: allow(cast-truncation): char scalar values fit u32 exactly
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_then_log_linear() {
        // Values 0..=3 map to their own buckets.
        for v in 0..4u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_lower_bound(v as usize), v);
        }
        // First log-linear octave: 4,5,6,7 each get a bucket.
        for v in 4..8u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
        }
        // Octave [8,16): sub-buckets at 8,10,12,14.
        assert_eq!(Histogram::bucket_index(8), 8);
        assert_eq!(Histogram::bucket_index(9), 8);
        assert_eq!(Histogram::bucket_index(10), 9);
        assert_eq!(Histogram::bucket_index(15), 11);
        assert_eq!(Histogram::bucket_lower_bound(8), 8);
        assert_eq!(Histogram::bucket_lower_bound(9), 10);
        assert_eq!(Histogram::bucket_lower_bound(11), 14);
        // Largest representable value stays in range.
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_and_lower_bound_are_consistent() {
        // lower_bound(i) must itself fall in bucket i, and one less than
        // the next bucket's lower bound must too (bucket ranges tile).
        for i in 0..NUM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            if i + 1 < NUM_BUCKETS {
                let next_lo = Histogram::bucket_lower_bound(i + 1);
                assert!(next_lo > lo, "bounds must be strictly increasing");
                assert_eq!(Histogram::bucket_index(next_lo - 1), i, "top of {i}");
            }
        }
    }

    #[test]
    fn relative_error_bounded_by_quarter() {
        for v in [5u64, 100, 1_000, 123_456, 1 << 40] {
            let lo = Histogram::bucket_lower_bound(Histogram::bucket_index(v));
            assert!(lo <= v);
            assert!(
                (v - lo) as f64 <= v as f64 * 0.25 + 1.0,
                "value {v} lo {lo}"
            );
        }
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.5), 0);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 26);
        assert_eq!(h.percentile(0.5), 2);
        // p100 lands in 100's bucket, whose lower bound is 96.
        assert_eq!(h.percentile(1.0), 96);
    }

    #[test]
    fn percentiles_at_exact_bucket_boundaries() {
        // 1000 observations of values 1..=1000: every value ≤ 3 is exact,
        // larger ones land at their bucket's lower bound.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 → rank 500 → value 500, bucket [448, 512) lower bound 448.
        assert_eq!(Histogram::bucket_index(500), Histogram::bucket_index(448));
        assert_eq!(h.percentile(0.50), 448);
        // p99 → rank 990 → value 990, bucket [896, 1024) lower bound 896.
        assert_eq!(h.percentile(0.99), 896);
        // p999 → rank 999 → value 999, same bucket as 990.
        assert_eq!(h.percentile(0.999), 896);
        // p0 clamps to rank 1 → value 1 (exact bucket).
        assert_eq!(h.percentile(0.0), 1);
        // p100 → rank 1000 → value 1000, bucket lower bound 896.
        assert_eq!(h.percentile(1.0), 896);
    }

    #[test]
    fn percentile_rank_boundary_between_two_exact_buckets() {
        // Two observations: rank math must not round across the boundary.
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        // p50 → rank exactly 1 → first value.
        assert_eq!(h.percentile(0.50), 1);
        // Anything above 0.5 crosses into the second value's bucket.
        assert_eq!(h.percentile(0.51), 2);
        assert_eq!(h.percentile(0.999), 2);
    }

    #[test]
    fn csv_and_json_exports_carry_p999() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("fct");
        for v in 1..=100u64 {
            m.observe(h, v);
        }
        let csv = m.to_csv();
        assert!(csv.contains("histogram,fct,p999,"));
        let json = m.to_json();
        assert!(json.contains("\"p999\":"));
        assert!(crate::perfetto::validate_json(&json).is_ok());
    }

    #[test]
    fn registry_interns_by_name() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("drops");
        let b = m.counter("drops");
        assert_eq!(a, b);
        m.inc(a, 2);
        m.inc(b, 3);
        assert_eq!(m.counter_value(a), 5);
        let g = m.gauge("depth");
        m.set_gauge(g, 9);
        m.set_gauge(g, 4);
        assert_eq!(m.gauge_value(g), 4);
    }

    #[test]
    fn exports_are_deterministic_and_ordered() {
        let build = || {
            let mut m = MetricsRegistry::new();
            let c = m.counter("z_first");
            m.inc(c, 1);
            let c = m.counter("a_second");
            m.inc(c, 2);
            let h = m.histogram("depth");
            m.observe(h, 10);
            m.observe(h, 1000);
            m
        };
        let (m1, m2) = (build(), build());
        assert_eq!(m1.to_csv(), m2.to_csv());
        assert_eq!(m1.to_json(), m2.to_json());
        // Insertion order, not alphabetical.
        let csv = m1.to_csv();
        let z = csv.find("z_first").unwrap();
        let a = csv.find("a_second").unwrap();
        assert!(z < a);
        let json = m1.to_json();
        assert!(json.contains("\"depth\":{\"count\":2"));
        assert!(crate::perfetto::validate_json(&json).is_ok());
    }

    #[test]
    fn json_escapes_metric_names() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("weird\"name\\x");
        m.inc(c, 1);
        let json = m.to_json();
        assert!(crate::perfetto::validate_json(&json).is_ok(), "{json}");
    }
}
