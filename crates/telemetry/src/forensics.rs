//! The drop forensics blackbox: one structured record per packet drop.
//!
//! The paper's headline result is *causal* — §8 separates self-inflicted
//! burst loss from cross-traffic contention loss. A flat `PacketDrop`
//! trace event cannot answer "why did this packet drop" without
//! re-deriving switch state offline, so the forensics store captures the
//! state *at the drop*: occupancies, the DT threshold at that instant,
//! the dropping flow's in-progress burst, the competing-flow set and its
//! byte shares over the preceding arrival window, ECN state, and a
//! packed ring of the preceding trace-event kinds. Each record carries a
//! [`DropCause`] classification applying the paper's attribution rules:
//!
//! * [`DropCause::SelfBurst`] — the dropping flow itself contributed at
//!   least half the bytes arriving at the quadrant over the recent
//!   window: the loss is self-inflicted burst overflow (§8.2).
//! * [`DropCause::CrossContention`] — other flows dominate the recent
//!   arrival window: the loss is cross-traffic buffer contention (§8.3).
//! * [`DropCause::FabricTransient`] — the drop happened off the rack
//!   switch entirely (fabric-hop FIFO overflow or the §4.2 NIC
//!   firmware-bug injector): transient, not buffer-share arithmetic.
//!
//! [`ForensicStore::record`] is on the simulator's per-drop path, so it
//! follows the trace-bus discipline: storage is allocated once in the
//! constructor and recording is a bounded store — no allocation, no
//! panic, no floats (the DT threshold arrives as a precomputed integer).

use crate::bus::DropReason;

/// The §8 attribution classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// The dropping flow's own burst dominated the recent arrival window.
    SelfBurst,
    /// Competing flows dominated the recent arrival window.
    CrossContention,
    /// The drop happened off the shared-buffer switch (fabric hop FIFO
    /// overflow or injected NIC fault); no buffer-share attribution.
    FabricTransient,
}

impl DropCause {
    /// Human-readable label (summaries, CSV exports).
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::SelfBurst => "self-burst",
            DropCause::CrossContention => "cross-contention",
            DropCause::FabricTransient => "fabric-transient",
        }
    }

    /// Stable numeric code for binary serializations.
    pub fn code(self) -> u8 {
        match self {
            DropCause::SelfBurst => 0,
            DropCause::CrossContention => 1,
            DropCause::FabricTransient => 2,
        }
    }

    /// Inverse of [`DropCause::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(DropCause::SelfBurst),
            1 => Some(DropCause::CrossContention),
            2 => Some(DropCause::FabricTransient),
            _ => None,
        }
    }

    /// All variants, in `code()` order (for attribution histograms).
    pub const ALL: [DropCause; 3] = [
        DropCause::SelfBurst,
        DropCause::CrossContention,
        DropCause::FabricTransient,
    ];
}

/// Everything the switch knew at the instant one packet was dropped.
///
/// All fields are plain integers so the record can be captured on the
/// hot path, serialized into a lake column per field, and compared
/// byte-for-byte across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropForensic {
    /// Sim time of the drop (ns).
    pub ns: u64,
    /// Egress queue (or [`u32::MAX`]-ish sentinels for off-switch drops).
    pub queue: u32,
    /// The dropping flow.
    pub flow: u64,
    /// Packet size in bytes.
    pub size: u32,
    /// The admission mechanism that refused the packet.
    pub reason: DropReason,
    /// The §8 attribution class.
    pub cause: DropCause,
    /// The target queue's total occupancy at the drop (bytes).
    pub queue_occupancy: u64,
    /// The quadrant's shared-pool occupancy at the drop (bytes).
    pub shared_occupancy: u64,
    /// The Choudhury–Hahne dynamic threshold at that instant (bytes),
    /// precomputed by the switch so this layer stays float-free.
    pub dt_threshold: u64,
    /// Consecutive packets of this flow arriving at this queue
    /// immediately before the drop (the in-progress burst length).
    pub burst_len: u32,
    /// Distinct *other* flows in the recent quadrant arrival window.
    pub competing_flows: u32,
    /// Bytes the dropping flow contributed to the recent arrival window.
    pub self_bytes: u64,
    /// Bytes every other flow contributed to the recent arrival window.
    pub other_bytes: u64,
    /// Whether queue occupancy was at or above the ECN marking threshold.
    pub ecn_on: bool,
    /// The kind codes of the eight preceding trace-bus events, packed
    /// little-endian one byte each (0 = no event); a micro flight
    /// recorder of what the switch was doing just before the drop.
    pub recent_kinds: u64,
}

/// Filler for unwritten slots (never observable through `records`).
const FILLER: DropForensic = DropForensic {
    ns: 0,
    queue: 0,
    flow: 0,
    size: 0,
    reason: DropReason::SharedBufferFull,
    cause: DropCause::FabricTransient,
    queue_occupancy: 0,
    shared_occupancy: 0,
    dt_threshold: 0,
    burst_len: 0,
    competing_flows: 0,
    self_bytes: 0,
    other_bytes: 0,
    ecn_on: false,
    recent_kinds: 0,
};

/// Fixed-capacity store of [`DropForensic`] records plus always-exact
/// per-cause counters.
///
/// Unlike the trace ring, the store keeps the *first* `capacity` records
/// (drops early in a run are the interesting ones — they seed the
/// congestion the rest of the run lives in) and counts the overflow; the
/// per-cause attribution counters never saturate, so the §8 histogram is
/// exact even when individual records are shed.
pub struct ForensicStore {
    records: Vec<DropForensic>,
    len: usize,
    shed: u64,
    by_cause: [u64; 3],
}

impl ForensicStore {
    /// Allocates storage for `capacity` records. All allocation happens
    /// here; [`ForensicStore::record`] never touches the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        ForensicStore {
            records: vec![FILLER; capacity],
            len: 0,
            shed: 0,
            by_cause: [0; 3],
        }
    }

    /// Store capacity in records. Zero means forensics are disabled
    /// (recording still maintains the per-cause counters).
    pub fn capacity(&self) -> usize {
        self.records.len()
    }

    /// Records held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records one drop. The per-drop hot path: a bounded store plus
    /// counter bookkeeping — no allocation, no panic (`len` is bounded
    /// by the pre-allocated capacity by construction).
    #[inline]
    pub fn record(&mut self, f: DropForensic) {
        self.by_cause[(f.cause.code() & 3).min(2) as usize] += 1;
        if self.len < self.records.len() {
            self.records[self.len] = f;
            self.len += 1;
        } else {
            self.shed += 1;
        }
    }

    /// The held records, oldest first.
    pub fn records(&self) -> &[DropForensic] {
        &self.records[..self.len]
    }

    /// Records lost to capacity exhaustion (counters stay exact).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Exact number of drops attributed to `cause`, including shed ones.
    pub fn count(&self, cause: DropCause) -> u64 {
        self.by_cause[cause.code() as usize]
    }

    /// Exact total drops recorded, including shed ones.
    pub fn total(&self) -> u64 {
        self.by_cause.iter().sum()
    }
}

// The record array (possibly large) is deliberately left out of Debug.
#[allow(clippy::missing_fields_in_debug)]
impl std::fmt::Debug for ForensicStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForensicStore")
            .field("len", &self.len)
            .field("capacity", &self.records.len())
            .field("shed", &self.shed)
            .field("by_cause", &self.by_cause)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forensic(ns: u64, cause: DropCause) -> DropForensic {
        DropForensic {
            ns,
            cause,
            flow: ns * 3,
            ..FILLER
        }
    }

    #[test]
    fn cause_codes_round_trip_and_labels_are_distinct() {
        for c in DropCause::ALL {
            assert_eq!(DropCause::from_code(c.code()), Some(c));
        }
        assert_eq!(DropCause::from_code(9), None);
        let mut labels: Vec<&str> = DropCause::ALL.iter().map(|c| c.as_str()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn store_keeps_first_records_and_counts_overflow_exactly() {
        let mut s = ForensicStore::with_capacity(2);
        s.record(forensic(1, DropCause::SelfBurst));
        s.record(forensic(2, DropCause::CrossContention));
        s.record(forensic(3, DropCause::CrossContention));
        assert_eq!(s.len(), 2);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.records()[0].ns, 1);
        assert_eq!(s.records()[1].ns, 2);
        // Counters stay exact through the shed.
        assert_eq!(s.count(DropCause::SelfBurst), 1);
        assert_eq!(s.count(DropCause::CrossContention), 2);
        assert_eq!(s.count(DropCause::FabricTransient), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn zero_capacity_store_only_counts() {
        let mut s = ForensicStore::with_capacity(0);
        s.record(forensic(1, DropCause::FabricTransient));
        assert!(s.is_empty());
        assert_eq!(s.shed(), 1);
        assert_eq!(s.count(DropCause::FabricTransient), 1);
    }
}
