//! Region-scale queue-id packing: `(tier, switch, port)` in a `u32`.
//!
//! Every telemetry record ([`crate::TraceEvent`], [`crate::DropForensic`])
//! carries a `u32` queue id. With one switch per rack that id was
//! simply the port number. A fat-tree region has many switches across
//! three tiers, and forensics/Perfetto must attribute each record to a
//! *specific* switch — so the id is packed:
//!
//! ```text
//!   bits 31..20  tier        (0 = ToR, 1 = agg, 2 = spine)
//!   bits 19..8   switch idx  (index within the tier)
//!   bits  7..0   port        (drain queue on that switch)
//! ```
//!
//! Legacy single-rack ids (small port numbers, switch 0) decode as
//! `(ToR, 0, port)` unchanged, so pre-topology lakes and traces keep
//! their meaning. The off-switch sentinel `0xFFFF` (fabric FIFO and
//! NIC-fault drops, which happen on no switch at all) is deliberately
//! *not* a packed id — consumers route those records by their
//! [`crate::DropCause::FabricTransient`] cause, never by qid.

/// Bit position of the tier field.
pub const QID_TIER_SHIFT: u32 = 20;
/// Bit position of the switch-index field.
pub const QID_SWITCH_SHIFT: u32 = 8;
/// Mask of the switch-index field (12 bits: up to 4096 switches/tier).
pub const QID_SWITCH_MASK: u32 = 0xFFF;
/// Mask of the port field (8 bits: up to 256 ports/switch).
pub const QID_PORT_MASK: u32 = 0xFF;

/// Sentinel queue id for drops that happen on no switch at all (the
/// abstract fabric trunk FIFO, NIC faults). Kept identical to the
/// pre-topology value so old lakes decode unchanged.
pub const OFFSWITCH_QID: u32 = 0xFFFF;

/// Tier code for top-of-rack switches.
pub const TIER_TOR: u8 = 0;
/// Tier code for pod aggregation switches.
pub const TIER_AGG: u8 = 1;
/// Tier code for region spine switches.
pub const TIER_SPINE: u8 = 2;

/// Packs `(tier, switch index, port)` into a telemetry queue id.
///
/// Hot-path friendly: pure shifts/ors, saturating via masks rather
/// than panicking on out-of-range inputs.
#[inline]
pub fn pack_qid(tier: u8, switch_idx: u32, port: u32) -> u32 {
    (u32::from(tier) << QID_TIER_SHIFT)
        | ((switch_idx & QID_SWITCH_MASK) << QID_SWITCH_SHIFT)
        | (port & QID_PORT_MASK)
}

/// The switch half of a qid: everything but the port. Adding a raw
/// port number to this base yields the packed qid, which is how
/// `SharedBufferSwitch` stamps its records without knowing the tree.
#[inline]
pub fn qid_base(tier: u8, switch_idx: u32) -> u32 {
    pack_qid(tier, switch_idx, 0)
}

/// Tier field of a packed qid.
#[inline]
pub fn qid_tier(qid: u32) -> u8 {
    // simlint: allow(cast-truncation): tier field is 2 bits wide
    (qid >> QID_TIER_SHIFT) as u8
}

/// Switch-index field of a packed qid.
#[inline]
pub fn qid_switch(qid: u32) -> u32 {
    (qid >> QID_SWITCH_SHIFT) & QID_SWITCH_MASK
}

/// Port field of a packed qid.
#[inline]
pub fn qid_port(qid: u32) -> u32 {
    qid & QID_PORT_MASK
}

/// Stable lowercase label of a tier code ("tor"/"agg"/"spine";
/// unknown codes render as "tier?").
pub fn tier_label(tier: u8) -> &'static str {
    match tier {
        TIER_TOR => "tor",
        TIER_AGG => "agg",
        TIER_SPINE => "spine",
        _ => "tier?",
    }
}

/// Human name of a packed qid: `tor0.q3`, `agg5.q2`, `spine1.q0`.
/// Legacy ids (tier 0, switch 0) keep the historical bare `q<port>`
/// so single-rack Perfetto tracks and summaries are unchanged.
pub fn qid_name(qid: u32) -> String {
    if qid == OFFSWITCH_QID {
        return String::from("offswitch");
    }
    let (tier, sw, port) = (qid_tier(qid), qid_switch(qid), qid_port(qid));
    if tier == TIER_TOR && sw == 0 {
        format!("q{port}")
    } else {
        format!("{}{sw}.q{port}", tier_label(tier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for tier in [TIER_TOR, TIER_AGG, TIER_SPINE] {
            for sw in [0u32, 1, 7, 4095] {
                for port in [0u32, 3, 255] {
                    let qid = pack_qid(tier, sw, port);
                    assert_eq!(qid_tier(qid), tier);
                    assert_eq!(qid_switch(qid), sw);
                    assert_eq!(qid_port(qid), port);
                }
            }
        }
    }

    #[test]
    fn legacy_port_numbers_decode_as_tor_zero() {
        for port in 0..8u32 {
            assert_eq!(qid_tier(port), TIER_TOR);
            assert_eq!(qid_switch(port), 0);
            assert_eq!(qid_port(port), port);
            assert_eq!(qid_name(port), format!("q{port}"));
        }
    }

    #[test]
    fn base_plus_port_equals_pack() {
        assert_eq!(qid_base(TIER_AGG, 5) + 2, pack_qid(TIER_AGG, 5, 2));
        assert_eq!(qid_base(TIER_SPINE, 3) + 1, pack_qid(TIER_SPINE, 3, 1));
        assert_eq!(qid_base(TIER_TOR, 0), 0);
    }

    #[test]
    fn names_are_tier_scoped() {
        assert_eq!(qid_name(pack_qid(TIER_AGG, 5, 2)), "agg5.q2");
        assert_eq!(qid_name(pack_qid(TIER_SPINE, 0, 3)), "spine0.q3");
        assert_eq!(qid_name(pack_qid(TIER_TOR, 2, 1)), "tor2.q1");
    }

    #[test]
    fn out_of_range_inputs_saturate_instead_of_panicking() {
        let qid = pack_qid(TIER_AGG, 0x1_0000, 0x300);
        assert_eq!(qid_switch(qid), 0);
        assert_eq!(qid_port(qid), 0);
        assert_eq!(qid_tier(qid), TIER_AGG);
    }
}
