//! Randomized tests for the analysis layer: burst detection exactly
//! partitions above-threshold samples, contention equals column sums, and
//! statistics behave like statistics. Inputs come from the repo's
//! deterministic [`SimRng`] (the workspace builds offline, without
//! proptest).

use millisampler::{AlignedRackRun, HostSeries};
use ms_analysis::burst::{burst_threshold, detect_bursts};
use ms_analysis::contention::contention_series;
use ms_analysis::stats::Cdf;
use ms_analysis::{analyze_run, Burst};
use ms_dcsim::{Ns, SimRng};

const LINK: ms_dcsim::Bps = ms_dcsim::Bps(12_500_000_000);

fn series_from(host: u32, values: Vec<u64>) -> HostSeries {
    let mut s = HostSeries::zeroed(host, Ns::ZERO, Ns::from_millis(1), values.len());
    s.conns = values.iter().map(|&v| v / 100_000).collect();
    s.in_retx = values
        .iter()
        .map(|&v| if v % 7 == 0 { v / 50 } else { 0 })
        .collect();
    s.in_bytes = values;
    s
}

fn random_values(rng: &mut SimRng, min_len: u64, span: u64) -> Vec<u64> {
    let len = (min_len + rng.gen_range(span)) as usize;
    (0..len).map(|_| rng.gen_range(1_600_000)).collect()
}

#[test]
fn bursts_partition_above_threshold_samples() {
    let mut rng = SimRng::new(0xA9A1_0001);
    for _ in 0..128 {
        let values = random_values(&mut rng, 1, 199);
        let s = series_from(0, values.clone());
        let threshold = burst_threshold(s.interval, LINK).as_u64();
        let bursts = detect_bursts(&s, LINK);
        // Every above-threshold sample is covered by exactly one burst;
        // every burst sample is above threshold.
        let mut covered = vec![false; values.len()];
        for b in &bursts {
            for i in b.start..b.end() {
                assert!(!covered[i], "overlapping bursts");
                covered[i] = true;
                assert!(values[i] > threshold);
            }
        }
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(covered[i], v > threshold, "sample {i} miscovered");
        }
        // Bursts are maximal: the sample before each start and after each
        // end is at or below threshold.
        for b in &bursts {
            if b.start > 0 {
                assert!(values[b.start - 1] <= threshold);
            }
            if b.end() < values.len() {
                assert!(values[b.end()] <= threshold);
            }
        }
        // Burst volume equals the sum of its samples.
        for b in &bursts {
            let sum: u64 = values[b.start..b.end()].iter().sum();
            assert_eq!(b.bytes, sum);
        }
    }
}

#[test]
fn contention_equals_per_sample_bursty_count() {
    let mut rng = SimRng::new(0xA9A1_0002);
    for _ in 0..128 {
        let n_rows = 1 + rng.gen_range(5) as usize;
        let rows: Vec<Vec<u64>> = (0..n_rows)
            .map(|_| (0..30).map(|_| rng.gen_range(1_600_000)).collect())
            .collect();
        let servers: Vec<HostSeries> = rows
            .iter()
            .enumerate()
            .map(|(h, v)| series_from(h as u32, v.clone()))
            .collect();
        let run = AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers,
        };
        let threshold = burst_threshold(run.interval, LINK).as_u64();
        let contention = contention_series(&run, LINK);
        for i in 0..30 {
            let expect = rows.iter().filter(|r| r[i] > threshold).count() as u32;
            assert_eq!(contention[i], expect);
        }
    }
}

#[test]
fn classified_bursts_consistent_with_run() {
    let mut rng = SimRng::new(0xA9A1_0003);
    for _ in 0..128 {
        let n_rows = 1 + rng.gen_range(4) as usize;
        let rows: Vec<Vec<u64>> = (0..n_rows)
            .map(|_| (0..40).map(|_| rng.gen_range(1_600_000)).collect())
            .collect();
        let servers: Vec<HostSeries> = rows
            .iter()
            .enumerate()
            .map(|(h, v)| series_from(h as u32, v.clone()))
            .collect();
        let run = AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers,
        };
        let a = analyze_run(&run, LINK, 3);
        // Each classified burst's max contention is at least 1 (itself)
        // and at most the number of servers.
        for b in &a.bursts {
            assert!(b.max_contention >= 1);
            assert!(b.max_contention <= rows.len() as u32);
            assert_eq!(b.contended, b.max_contention >= 2);
            assert_eq!(b.lossy, b.retx_bytes > 0);
        }
        // Totals agree with raw sums.
        let expect_in: u64 = rows.iter().flatten().sum();
        assert_eq!(a.total_in_bytes, expect_in);
        // bursty_servers counts rows with any above-threshold sample.
        let threshold = burst_threshold(run.interval, LINK).as_u64();
        let expect_bursty = rows
            .iter()
            .filter(|r| r.iter().any(|&v| v > threshold))
            .count();
        assert_eq!(a.bursty_servers, expect_bursty);
    }
}

#[test]
fn cdf_quantiles_are_monotone_and_bounded() {
    let mut rng = SimRng::new(0xA9A1_0004);
    for _ in 0..128 {
        let len = 1 + rng.gen_range(499) as usize;
        let values: Vec<f64> = (0..len).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let cdf = Cdf::new(values.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = cdf.quantile(q);
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(cdf.quantile(0.0) >= min - 1e-9);
        assert!(cdf.quantile(1.0) <= max + 1e-9);
    }
}

#[test]
fn cdf_fraction_inverts_quantile() {
    let mut rng = SimRng::new(0xA9A1_0005);
    for _ in 0..128 {
        let len = 2 + rng.gen_range(298) as usize;
        let values: Vec<f64> = (0..len).map(|_| rng.next_f64() * 1e6).collect();
        let q = 0.05 + rng.next_f64() * 0.9;
        let cdf = Cdf::new(values);
        let v = cdf.quantile(q);
        let frac = cdf.fraction_at_or_below(v);
        // fraction(quantile(q)) >= q (ties can only push it up).
        assert!(frac + 1e-9 >= q, "q={q} v={v} frac={frac}");
    }
}

#[test]
fn burst_len_ms_consistency() {
    let mut rng = SimRng::new(0xA9A1_0006);
    for _ in 0..128 {
        let start = rng.gen_range(100) as usize;
        let len = 1 + rng.gen_range(49) as usize;
        let b = Burst {
            server: 0,
            start,
            len,
            bytes: 0,
            avg_conns: 0.0,
        };
        assert_eq!(b.end(), start + len);
        assert!((b.len_ms(1.0) - len as f64).abs() < 1e-12);
    }
}
