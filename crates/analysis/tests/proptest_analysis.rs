//! Property-based tests for the analysis layer: burst detection exactly
//! partitions above-threshold samples, contention equals column sums, and
//! statistics behave like statistics.

use millisampler::{AlignedRackRun, HostSeries};
use ms_analysis::burst::{burst_threshold, detect_bursts};
use ms_analysis::contention::contention_series;
use ms_analysis::stats::Cdf;
use ms_analysis::{analyze_run, Burst};
use ms_dcsim::Ns;
use proptest::prelude::*;

const LINK: u64 = 12_500_000_000;

fn series_from(host: u32, values: Vec<u64>) -> HostSeries {
    let mut s = HostSeries::zeroed(host, Ns::ZERO, Ns::from_millis(1), values.len());
    s.conns = values.iter().map(|&v| v / 100_000).collect();
    s.in_retx = values.iter().map(|&v| if v % 7 == 0 { v / 50 } else { 0 }).collect();
    s.in_bytes = values;
    s
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1_600_000, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bursts_partition_above_threshold_samples(values in arb_values()) {
        let s = series_from(0, values.clone());
        let threshold = burst_threshold(s.interval, LINK);
        let bursts = detect_bursts(&s, LINK);
        // Every above-threshold sample is covered by exactly one burst;
        // every burst sample is above threshold.
        let mut covered = vec![false; values.len()];
        for b in &bursts {
            for i in b.start..b.end() {
                prop_assert!(!covered[i], "overlapping bursts");
                covered[i] = true;
                prop_assert!(values[i] > threshold);
            }
        }
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(covered[i], v > threshold, "sample {} miscovered", i);
        }
        // Bursts are maximal: the sample before each start and after each
        // end is at or below threshold.
        for b in &bursts {
            if b.start > 0 {
                prop_assert!(values[b.start - 1] <= threshold);
            }
            if b.end() < values.len() {
                prop_assert!(values[b.end()] <= threshold);
            }
        }
        // Burst volume equals the sum of its samples.
        for b in &bursts {
            let sum: u64 = values[b.start..b.end()].iter().sum();
            prop_assert_eq!(b.bytes, sum);
        }
    }

    #[test]
    fn contention_equals_per_sample_bursty_count(
        rows in prop::collection::vec(prop::collection::vec(0u64..1_600_000, 30), 1..6)
    ) {
        let servers: Vec<HostSeries> = rows
            .iter()
            .enumerate()
            .map(|(h, v)| series_from(h as u32, v.clone()))
            .collect();
        let run = AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers,
        };
        let threshold = burst_threshold(run.interval, LINK);
        let contention = contention_series(&run, LINK);
        for i in 0..30 {
            let expect = rows.iter().filter(|r| r[i] > threshold).count() as u32;
            prop_assert_eq!(contention[i], expect);
        }
    }

    #[test]
    fn classified_bursts_consistent_with_run(rows in prop::collection::vec(
        prop::collection::vec(0u64..1_600_000, 40), 1..5
    )) {
        let servers: Vec<HostSeries> = rows
            .iter()
            .enumerate()
            .map(|(h, v)| series_from(h as u32, v.clone()))
            .collect();
        let run = AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers,
        };
        let a = analyze_run(&run, LINK, 3);
        // Each classified burst's max contention is at least 1 (itself)
        // and at most the number of servers.
        for b in &a.bursts {
            prop_assert!(b.max_contention >= 1);
            prop_assert!(b.max_contention <= rows.len() as u32);
            prop_assert_eq!(b.contended, b.max_contention >= 2);
            prop_assert_eq!(b.lossy, b.retx_bytes > 0);
        }
        // Totals agree with raw sums.
        let expect_in: u64 = rows.iter().flatten().sum();
        prop_assert_eq!(a.total_in_bytes, expect_in);
        // bursty_servers counts rows with any above-threshold sample.
        let threshold = burst_threshold(run.interval, LINK);
        let expect_bursty = rows.iter().filter(|r| r.iter().any(|&v| v > threshold)).count();
        prop_assert_eq!(a.bursty_servers, expect_bursty);
    }

    #[test]
    fn cdf_quantiles_are_monotone_and_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let cdf = Cdf::new(values.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(cdf.quantile(0.0) >= min - 1e-9);
        prop_assert!(cdf.quantile(1.0) <= max + 1e-9);
    }

    #[test]
    fn cdf_fraction_inverts_quantile(values in prop::collection::vec(0f64..1e6, 2..300), q in 0.05f64..0.95) {
        let cdf = Cdf::new(values);
        let v = cdf.quantile(q);
        let frac = cdf.fraction_at_or_below(v);
        // fraction(quantile(q)) >= q (ties can only push it up).
        prop_assert!(frac + 1e-9 >= q, "q={} v={} frac={}", q, v, frac);
    }

    #[test]
    fn burst_len_ms_consistency(start in 0usize..100, len in 1usize..50) {
        let b = Burst { server: 0, start, len, bytes: 0, avg_conns: 0.0 };
        prop_assert_eq!(b.end(), start + len);
        prop_assert!((b.len_ms(1.0) - len as f64).abs() < 1e-12);
    }
}
