//! Statistics utilities for reproducing the paper's exhibits.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), by nearest-rank; NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // Classic nearest-rank: the ⌈q·n⌉-th smallest sample.
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The fraction of samples `≤ x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// `n` evenly spaced `(value, cumulative %)` points for printing the
    /// CDF curve the way the paper's figures plot them.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = (i as f64 + 1.0) / n as f64;
                (self.quantile(q), 100.0 * q)
            })
            .collect()
    }
}

/// Five-number-plus-mean summary for box plots (Fig. 13 style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Summarizes samples; `None` when empty.
    pub fn from_values(values: Vec<f64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let cdf = Cdf::new(values);
        Some(BoxStats {
            min: cdf.quantile(0.0),
            p25: cdf.quantile(0.25),
            median: cdf.median(),
            p75: cdf.quantile(0.75),
            p90: cdf.quantile(0.9),
            max: cdf.quantile(1.0),
            mean: cdf.mean(),
            n: cdf.len(),
        })
    }
}

/// Pearson correlation coefficient; NaN for degenerate inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx * vy).sqrt()
}

/// Average ranks (1-based, ties share the mean rank).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks); robust to the
/// nonlinearity of e.g. the volume→contention relationship (Fig. 14).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return f64::NAN;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Groups `(x, y)` pairs into x-buckets of `width` and summarizes each
/// bucket's `y` values — the Fig. 14 presentation (contention distribution
/// per ingress-volume bucket) and the Figs. 16/18/19 loss-rate-per-bucket
/// presentation.
pub fn bucketed(pairs: &[(f64, f64)], width: f64) -> Vec<(f64, BoxStats)> {
    assert!(width > 0.0);
    let mut buckets: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
    for &(x, y) in pairs {
        if x.is_nan() || y.is_nan() {
            continue;
        }
        let b = (x / width).floor() as i64;
        buckets.entry(b).or_default().push(y);
    }
    buckets
        .into_iter()
        .filter_map(|(b, ys)| BoxStats::from_values(ys).map(|s| ((b as f64 + 0.5) * width, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.median(), 50.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.9), 90.0);
        assert!((cdf.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_at_or_below_counts_ties() {
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(3.0), 1.0);
    }

    #[test]
    fn empty_cdf_is_nan() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.median().is_nan());
        assert!(cdf.is_empty());
        assert!(cdf.curve(10).is_empty());
    }

    #[test]
    fn nan_samples_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn curve_is_monotonic() {
        let cdf = Cdf::new(vec![5.0, 1.0, 9.0, 3.0, 7.0]);
        let curve = cdf.curve(10);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 100.0);
    }

    #[test]
    fn boxstats_summary() {
        let s = BoxStats::from_values((0..=10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.n, 11);
        assert!(BoxStats::from_values(vec![]).is_none());
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
    }

    #[test]
    fn spearman_detects_monotone_nonlinear_relations() {
        let xs: Vec<f64> = (1..60).map(|i| i as f64).collect();
        // Strongly nonlinear but perfectly monotone.
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
        let neg: Vec<f64> = xs.iter().map(|x| 1.0 / x).collect();
        assert!((spearman(&xs, &neg) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
        // Constant series: undefined (zero variance in ranks).
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 5.0]), vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn bucketed_groups_by_x() {
        let pairs = vec![(0.5, 1.0), (0.9, 3.0), (2.5, 10.0)];
        let out = bucketed(&pairs, 1.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0.5); // bucket [0,1) center
        assert_eq!(out[0].1.n, 2);
        assert_eq!(out[0].1.mean, 2.0);
        assert_eq!(out[1].0, 2.5);
        assert_eq!(out[1].1.n, 1);
    }
}
