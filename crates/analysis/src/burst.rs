//! Burst detection (§5).
//!
//! "We define a burst as any consecutive set of one or more sample data
//! points that exceeds 50 % of line rate. Traffic less than this rate does
//! not typically result in buffering."

use millisampler::HostSeries;
use ms_dcsim::{Bps, Bytes, Ns};

/// A detected burst on one server's ingress series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Server (rack-local index).
    pub server: usize,
    /// First bucket index of the burst.
    pub start: usize,
    /// Length in buckets (≥ 1).
    pub len: usize,
    /// Total ingress bytes over the burst.
    pub bytes: u64,
    /// Mean estimated connections per sample inside the burst.
    pub avg_conns: f64,
}

impl Burst {
    /// One-past-the-end bucket index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Burst length in milliseconds given the sampling interval.
    pub fn len_ms(&self, interval_ms: f64) -> f64 {
        self.len as f64 * interval_ms
    }
}

/// The burst threshold in bytes per bucket: 50 % of line rate.
pub fn burst_threshold(interval: Ns, link: Bps) -> Bytes {
    interval.bytes_at_rate(link) / 2
}

/// Detects bursts on one host's ingress series.
pub fn detect_bursts(series: &HostSeries, link: Bps) -> Vec<Burst> {
    let threshold = burst_threshold(series.interval, link).as_u64();
    let mut out = Vec::new();
    let mut current: Option<Burst> = None;
    for (i, &bytes) in series.in_bytes.iter().enumerate() {
        if bytes > threshold {
            match current.as_mut() {
                Some(b) => {
                    b.len += 1;
                    b.bytes += bytes;
                    b.avg_conns += series.conns[i] as f64;
                }
                None => {
                    current = Some(Burst {
                        server: series.host as usize,
                        start: i,
                        len: 1,
                        bytes,
                        avg_conns: series.conns[i] as f64,
                    });
                }
            }
        } else if let Some(mut b) = current.take() {
            b.avg_conns /= b.len as f64;
            out.push(b);
        }
    }
    if let Some(mut b) = current.take() {
        b.avg_conns /= b.len as f64;
        out.push(b);
    }
    out
}

/// Whether any sample of `series` is bursty — "bursty server runs" in
/// Table 1's accounting.
pub fn is_bursty_run(series: &HostSeries, link: Bps) -> bool {
    let threshold = burst_threshold(series.interval, link).as_u64();
    series.in_bytes.iter().any(|&b| b > threshold)
}

/// Fraction of the run's ingress bytes carried inside bursts (§5 reports
/// 49.7 % for the production dataset).
pub fn bytes_in_bursts_fraction(series: &HostSeries, link: Bps) -> f64 {
    let total: u64 = series.in_bytes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let bursts = detect_bursts(series, link);
    let in_bursts: u64 = bursts.iter().map(|b| b.bytes).sum();
    in_bursts as f64 / total as f64
}

/// Mean per-sample connection estimates inside vs. outside bursts
/// (Fig. 8). Returns `(inside, outside)`; either is NaN when that side has
/// no samples.
pub fn conns_inside_outside(series: &HostSeries, link: Bps) -> (f64, f64) {
    let threshold = burst_threshold(series.interval, link).as_u64();
    let mut inside = (0u64, 0usize);
    let mut outside = (0u64, 0usize);
    for (i, &bytes) in series.in_bytes.iter().enumerate() {
        if bytes > threshold {
            inside.0 += series.conns[i];
            inside.1 += 1;
        } else {
            outside.0 += series.conns[i];
            outside.1 += 1;
        }
    }
    let avg = |(sum, n): (u64, usize)| {
        if n == 0 {
            f64::NAN
        } else {
            sum as f64 / n as f64
        }
    };
    (avg(inside), avg(outside))
}

#[cfg(test)]
mod tests {
    use super::*;
    const LINK: Bps = Bps(12_500_000_000);
    /// 50% of 12.5 Gbps over 1 ms.
    const THRESH: u64 = 781_250;

    fn series(values: &[u64]) -> HostSeries {
        let mut s = HostSeries::zeroed(3, Ns::ZERO, Ns::from_millis(1), values.len());
        s.in_bytes = values.to_vec();
        s.conns = values.iter().map(|&v| if v > 0 { 10 } else { 0 }).collect();
        s
    }

    #[test]
    fn threshold_is_half_line_rate() {
        assert_eq!(burst_threshold(Ns::from_millis(1), LINK), Bytes(THRESH));
    }

    #[test]
    fn no_bursts_below_threshold() {
        let s = series(&[0, THRESH / 2, THRESH, 100]);
        // Exactly-at-threshold is NOT a burst ("exceeds 50%").
        assert!(detect_bursts(&s, LINK).is_empty());
        assert!(!is_bursty_run(&s, LINK));
    }

    #[test]
    fn single_sample_burst() {
        let s = series(&[0, THRESH + 1, 0]);
        let bursts = detect_bursts(&s, LINK);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start, 1);
        assert_eq!(bursts[0].len, 1);
        assert_eq!(bursts[0].bytes, THRESH + 1);
        assert_eq!(bursts[0].server, 3);
    }

    #[test]
    fn consecutive_samples_merge() {
        let hi = THRESH + 100;
        let s = series(&[0, hi, hi, hi, 0, hi, hi, 0]);
        let bursts = detect_bursts(&s, LINK);
        assert_eq!(bursts.len(), 2);
        assert_eq!((bursts[0].start, bursts[0].len), (1, 3));
        assert_eq!((bursts[1].start, bursts[1].len), (5, 2));
        assert_eq!(bursts[0].bytes, 3 * hi);
    }

    #[test]
    fn burst_at_series_end_is_closed() {
        let hi = THRESH * 2;
        let s = series(&[0, 0, hi, hi]);
        let bursts = detect_bursts(&s, LINK);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].end(), 4);
    }

    #[test]
    fn avg_conns_averaged_over_burst() {
        let hi = THRESH + 1;
        let mut s = series(&[hi, hi]);
        s.conns = vec![10, 30];
        let bursts = detect_bursts(&s, LINK);
        assert_eq!(bursts[0].avg_conns, 20.0);
    }

    #[test]
    fn bytes_in_bursts_fraction_splits() {
        let hi = THRESH * 2;
        let lo = THRESH / 2;
        let s = series(&[hi, lo, lo, lo]); // hi = 2T of 3.5T total
        let f = bytes_in_bursts_fraction(&s, LINK);
        assert!((f - (2.0 / 3.5)).abs() < 1e-9, "{f}");
    }

    #[test]
    fn conns_inside_vs_outside() {
        let hi = THRESH + 1;
        let mut s = series(&[hi, 10, hi, 10]);
        s.conns = vec![40, 5, 60, 15];
        let (inside, outside) = conns_inside_outside(&s, LINK);
        assert_eq!(inside, 50.0);
        assert_eq!(outside, 10.0);
    }

    #[test]
    fn len_ms_scales_with_interval() {
        let b = Burst {
            server: 0,
            start: 0,
            len: 5,
            bytes: 0,
            avg_conns: 0.0,
        };
        assert_eq!(b.len_ms(1.0), 5.0);
        assert_eq!(b.len_ms(0.1), 0.5);
    }
}
