//! # ms-analysis — bursts, contention, and loss from Millisampler data
//!
//! Implements the paper's analysis pipeline over [`millisampler`] rack
//! runs:
//!
//! * [`burst`] — burst detection per §5: "a burst is any consecutive set
//!   of one or more sample data points that exceeds 50 % of line rate",
//!   plus per-burst volume, length, connection counts, and retransmit
//!   association.
//! * [`contention`] — per-sample contention (the number of simultaneously
//!   bursty servers in the rack), run-level statistics, and the queue
//!   buffer-share mapping `T(S) = αB/(1+αS)` of §2.1.
//! * [`classify`] — the §8 joint methodology: contended vs. non-contended
//!   bursts (max contention over the burst's lifetime), lossy bursts
//!   (retransmit-bit bytes within the burst window plus an RTT-scale
//!   slack, per §4.6's "look for retransmissions that occur an RTT
//!   later").
//! * [`dataset`] — multi-rack aggregation: rack categorization into
//!   RegA-High / RegA-Typical by average contention, and the dataset
//!   summary rows of Tables 1 and 2.
//! * [`aggregate`] — the order-insensitive sweep fold ([`SweepAggregate`])
//!   shared by the in-memory path and the ms-lake streaming query engine,
//!   so lake-backed analyses can be asserted bit-for-bit against the
//!   in-memory ones.
//! * [`outcome`] — the unified per-run result record ([`RunOutcome`]):
//!   simulation ground truth plus analysis scalars behind one codec
//!   schema and one CSV row shape, consumed by sweep harnesses.
//! * [`stats`] — CDFs, quantiles, box-plot summaries, Pearson correlation,
//!   and bucketed series used to print the paper's figures.
//! * [`diagnose`] — the §4.2 diagnostic signatures over stored runs:
//!   loss-at-low-utilization (the NIC firmware-bug war story) and sampler
//!   blackout gaps (the §4.6 kernel-stall signature).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod burst;
pub mod classify;
pub mod contention;
pub mod dataset;
pub mod diagnose;
pub mod outcome;
pub mod stats;

pub use aggregate::{BurstRow, SweepAggregate};
pub use burst::{detect_bursts, Burst};
pub use classify::{analyze_run, RunAnalysis};
pub use contention::{contention_series, queue_share, ContentionStats};
pub use dataset::{DatasetSummary, RackCategory, RackHourObservation};
pub use outcome::RunOutcome;
pub use stats::{BoxStats, Cdf};
