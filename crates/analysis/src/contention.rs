//! Contention: simultaneously bursty servers (§5, §7).
//!
//! "We define contention as the number of servers that are simultaneously
//! bursty during each 1 ms data point of the run." Contention level 0 means
//! no bursts; level 1 is a single burst (which effectively sees no buffer
//! contention).

use crate::burst::burst_threshold;
use millisampler::AlignedRackRun;
use ms_dcsim::Bps;

/// The per-sample contention series for an aligned rack run.
pub fn contention_series(run: &AlignedRackRun, link: Bps) -> Vec<u32> {
    let threshold = burst_threshold(run.interval, link).as_u64();
    let n = run.len();
    let mut out = vec![0u32; n];
    for server in &run.servers {
        for (i, &b) in server.in_bytes.iter().enumerate() {
            if b > threshold {
                out[i] += 1;
            }
        }
    }
    out
}

/// Run-level contention statistics (the quantities of Figs. 9, 12, 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionStats {
    /// Mean contention over every sample of the run (zeros included).
    pub avg: f64,
    /// 90th-percentile contention over every sample.
    pub p90: u32,
    /// Maximum contention.
    pub max: u32,
    /// Minimum contention over samples with at least one bursty server
    /// (§7.3 computes the min "across points with at least one active
    /// server"); `None` if the run has no bursty sample at all.
    pub min_active: Option<u32>,
    /// Number of samples.
    pub samples: usize,
}

impl ContentionStats {
    /// Computes statistics from a contention series.
    pub fn from_series(series: &[u32]) -> Self {
        let samples = series.len();
        let avg = if samples == 0 {
            0.0
        } else {
            series.iter().map(|&c| c as f64).sum::<f64>() / samples as f64
        };
        let mut sorted = series.to_vec();
        sorted.sort_unstable();
        let p90 = if samples == 0 {
            0
        } else {
            sorted[((samples as f64 - 1.0) * 0.9).round() as usize]
        };
        let max = sorted.last().copied().unwrap_or(0);
        let min_active = series.iter().filter(|&&c| c > 0).min().copied();
        ContentionStats {
            avg,
            p90,
            max,
            min_active,
            samples,
        }
    }
}

/// The §2.1 closed form: the maximum fraction of the shared buffer a
/// fully-loaded queue gets with `s` active queues and parameter `alpha`:
/// `T = α/(1 + α·s)` (as a fraction of the shared buffer). For `s = 0`
/// this is the single-queue limit with the queue itself active, i.e.
/// contention level `s` counts *other* active queues... the paper's Fig. 1
/// x-axis is the total number of active queues `S ≥ 1`.
pub fn queue_share(alpha: f64, s: usize) -> f64 {
    assert!(alpha > 0.0);
    alpha / (1.0 + alpha * s as f64)
}

/// Buffer share drop between two contention levels, as a fraction of the
/// share at the lower level — §7.3's "drop in buffer share" metric.
pub fn share_drop(alpha: f64, s_low: u32, s_high: u32) -> f64 {
    debug_assert!(s_low <= s_high);
    let lo = queue_share(alpha, s_low.max(1) as usize);
    let hi = queue_share(alpha, s_high.max(1) as usize);
    1.0 - hi / lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use millisampler::HostSeries;
    use ms_dcsim::Ns;

    const LINK: Bps = Bps(12_500_000_000);
    const HI: u64 = 800_000; // > 781,250 threshold

    fn run(servers: Vec<Vec<u64>>) -> AlignedRackRun {
        let n = servers[0].len();
        let hosts = servers
            .into_iter()
            .enumerate()
            .map(|(h, in_bytes)| {
                let mut s = HostSeries::zeroed(h as u32, Ns::ZERO, Ns::from_millis(1), n);
                s.in_bytes = in_bytes;
                s
            })
            .collect();
        AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers: hosts,
        }
    }

    #[test]
    fn counts_simultaneous_bursty_servers() {
        let r = run(vec![
            vec![HI, HI, 0, 0],
            vec![HI, 0, HI, 0],
            vec![HI, 0, 0, 0],
        ]);
        assert_eq!(contention_series(&r, LINK), vec![3, 1, 1, 0]);
    }

    #[test]
    fn stats_include_zero_samples_in_avg() {
        let s = vec![3, 1, 1, 0];
        let stats = ContentionStats::from_series(&s);
        assert!((stats.avg - 1.25).abs() < 1e-12);
        assert_eq!(stats.max, 3);
        assert_eq!(stats.min_active, Some(1));
        assert_eq!(stats.samples, 4);
    }

    #[test]
    fn min_active_ignores_idle_samples() {
        let stats = ContentionStats::from_series(&[0, 0, 5, 7, 0]);
        assert_eq!(stats.min_active, Some(5));
        let idle = ContentionStats::from_series(&[0, 0]);
        assert_eq!(idle.min_active, None);
    }

    #[test]
    fn p90_of_uniform_series() {
        let s: Vec<u32> = (0..100).collect();
        let stats = ContentionStats::from_series(&s);
        assert_eq!(stats.p90, 89);
    }

    #[test]
    fn queue_share_matches_paper_anchors() {
        // §2.1: α=1 → B/2 for one queue, B/3 each for two.
        assert!((queue_share(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((queue_share(1.0, 2) - 1.0 / 3.0).abs() < 1e-12);
        // §2.1: α=2 → 2B/3 and 2B/5.
        assert!((queue_share(2.0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((queue_share(2.0, 2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn share_drop_examples_from_paper() {
        // §7.3: "runs ... experience buffer share drop from 50% to 33.3%
        // which is a 33.4% drop from its peak" (min contention 1 → p90 2).
        let d = share_drop(1.0, 1, 2);
        assert!((d - (1.0 / 3.0)).abs() < 0.01, "{d}");
        // §5: buffer between 0.5 and 0.25 for contention 1 → 3.
        let d3 = share_drop(1.0, 1, 3);
        assert!((d3 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_zero_stats() {
        let stats = ContentionStats::from_series(&[]);
        assert_eq!(stats.avg, 0.0);
        assert_eq!(stats.max, 0);
        assert_eq!(stats.min_active, None);
    }
}
