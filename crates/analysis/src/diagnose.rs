//! Diagnostic analyses over Millisampler history (§4.2).
//!
//! The paper highlights that the on-host week of runs "permits diagnostic
//! analysis of atypical events, including firmware bugs, kernel locking
//! errors, and large congestion events. For instance, Millisampler helped
//! uncover a NIC firmware bug by isolating examples of packet loss
//! although utilization was low at fine time-scales." This module encodes
//! those signatures as detectors over [`HostSeries`] runs.

use millisampler::HostSeries;
use ms_dcsim::Bps;

/// A diagnostic finding over a window of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Finding {
    /// First bucket of the suspicious window.
    pub start: usize,
    /// One past the last bucket.
    pub end: usize,
    /// What the window looks like.
    pub kind: FindingKind,
}

/// Diagnostic signatures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FindingKind {
    /// Retransmissions while the link is nearly idle: congestion cannot
    /// explain the loss — NIC/firmware/host suspect (§4.2).
    LossAtLowUtilization {
        /// Retransmit bytes in the window.
        retx_bytes: u64,
        /// Mean utilization over the window (fraction of line rate).
        utilization: f64,
    },
    /// A gap in an otherwise-active series: the host NIC kept receiving
    /// but the kernel processed nothing — the §4.6 locking-bug signature
    /// (traffic resumes right after, often as an apparent burst).
    SamplerBlackout {
        /// Bytes per bucket immediately before the gap.
        rate_before: u64,
        /// Bytes per bucket immediately after the gap.
        rate_after: u64,
    },
}

/// Finds windows with retransmissions but near-idle utilization.
///
/// `window` is the analysis granularity in buckets; a window is flagged
/// when it contains retransmit bytes while mean utilization stays below
/// `max_utilization` (e.g. 0.10).
pub fn loss_at_low_utilization(
    series: &HostSeries,
    link: Bps,
    window: usize,
    max_utilization: f64,
) -> Vec<Finding> {
    assert!(window > 0);
    let capacity = series.interval.bytes_at_rate(link).as_u64().max(1) as f64;
    let mut out = Vec::new();
    let n = series.len();
    let mut i = 0;
    while i < n {
        let end = (i + window).min(n);
        let retx: u64 = series.in_retx[i..end].iter().sum();
        if retx > 0 {
            let vol: u64 = series.in_bytes[i..end].iter().sum();
            let util = vol as f64 / (capacity * (end - i) as f64);
            if util < max_utilization {
                out.push(Finding {
                    start: i,
                    end,
                    kind: FindingKind::LossAtLowUtilization {
                        retx_bytes: retx,
                        utilization: util,
                    },
                });
            }
        }
        i = end;
    }
    out
}

/// Finds blackout gaps: ≥ `min_gap` consecutive all-zero buckets flanked
/// by activity of at least `min_rate` bytes/bucket on both sides.
pub fn sampler_blackouts(series: &HostSeries, min_gap: usize, min_rate: u64) -> Vec<Finding> {
    assert!(min_gap > 0);
    let v = &series.in_bytes;
    let n = v.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if v[i] == 0 {
            let start = i;
            while i < n && v[i] == 0 {
                i += 1;
            }
            let len = i - start;
            if len >= min_gap && start > 0 && i < n {
                let before = v[start - 1];
                let after = v[i];
                if before >= min_rate && after >= min_rate {
                    out.push(Finding {
                        start,
                        end: i,
                        kind: FindingKind::SamplerBlackout {
                            rate_before: before,
                            rate_after: after,
                        },
                    });
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_dcsim::Ns;

    const LINK: Bps = Bps(12_500_000_000);

    fn series(in_bytes: Vec<u64>, in_retx: Vec<u64>) -> HostSeries {
        let n = in_bytes.len();
        let mut s = HostSeries::zeroed(0, Ns::ZERO, Ns::from_millis(1), n);
        s.in_bytes = in_bytes;
        s.in_retx = in_retx;
        s
    }

    #[test]
    fn flags_retx_on_idle_link() {
        // 10 buckets at ~1% utilization with retx in the middle.
        let mut in_bytes = vec![15_000u64; 10];
        in_bytes[5] = 20_000;
        let mut in_retx = vec![0u64; 10];
        in_retx[5] = 4_500;
        let s = series(in_bytes, in_retx);
        let findings = loss_at_low_utilization(&s, LINK, 10, 0.10);
        assert_eq!(findings.len(), 1);
        match findings[0].kind {
            FindingKind::LossAtLowUtilization {
                retx_bytes,
                utilization,
            } => {
                assert_eq!(retx_bytes, 4_500);
                assert!(utilization < 0.02);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn congestion_loss_not_flagged() {
        // Retx during a genuine full-rate burst: utilization explains it.
        let in_bytes = vec![1_500_000u64; 10];
        let mut in_retx = vec![0u64; 10];
        in_retx[5] = 50_000;
        let s = series(in_bytes, in_retx);
        assert!(loss_at_low_utilization(&s, LINK, 10, 0.10).is_empty());
    }

    #[test]
    fn clean_idle_link_not_flagged() {
        let s = series(vec![1_000; 20], vec![0; 20]);
        assert!(loss_at_low_utilization(&s, LINK, 5, 0.10).is_empty());
    }

    #[test]
    fn window_granularity_respected() {
        // Retx in the second window only.
        let mut in_retx = vec![0u64; 20];
        in_retx[15] = 100;
        let s = series(vec![100; 20], in_retx);
        let findings = loss_at_low_utilization(&s, LINK, 10, 0.10);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].start, findings[0].end), (10, 20));
    }

    #[test]
    fn blackout_detected_between_activity() {
        let mut v = vec![500_000u64; 30];
        for b in v.iter_mut().take(20).skip(10) {
            *b = 0;
        }
        let s = series(v, vec![0; 30]);
        let f = sampler_blackouts(&s, 5, 100_000);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].start, f[0].end), (10, 20));
    }

    #[test]
    fn short_gaps_and_quiet_edges_ignored() {
        // 2-bucket gap: below min_gap.
        let mut v = vec![500_000u64; 10];
        v[4] = 0;
        v[5] = 0;
        let s = series(v, vec![0; 10]);
        assert!(sampler_blackouts(&s, 5, 100_000).is_empty());
        // Long gap but idle before it: not a blackout, just idleness.
        let mut v2 = vec![0u64; 30];
        for b in v2.iter_mut().skip(20) {
            *b = 500_000;
        }
        let s2 = series(v2, vec![0; 30]);
        assert!(sampler_blackouts(&s2, 5, 100_000).is_empty());
    }

    #[test]
    fn leading_and_trailing_zeros_not_blackouts() {
        let mut v = vec![0u64; 30];
        for b in v.iter_mut().take(20).skip(10) {
            *b = 500_000;
        }
        let s = series(v, vec![0; 30]);
        assert!(sampler_blackouts(&s, 5, 100_000).is_empty());
    }
}
