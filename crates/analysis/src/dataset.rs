//! Multi-rack aggregation: rack categorization and dataset summaries.
//!
//! §7.1 splits RegA racks by busy-hour average contention into
//! **RegA-High** (top 20 %) and **RegA-Typical** (the rest); Tables 1 and
//! 2 summarize the dataset per region and per category. This module holds
//! the observation record one `(rack, hour, run)` cell produces and the
//! aggregation helpers the experiment harness prints from.

use crate::classify::RunAnalysis;
use crate::outcome::RunOutcome;

/// Which bucket of the §8 analysis a rack belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RackCategory {
    /// RegA, bottom 80 % by busy-hour average contention.
    RegATypical,
    /// RegA, top 20 % by busy-hour average contention.
    RegAHigh,
    /// All of RegB.
    RegB,
}

impl std::fmt::Display for RackCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RackCategory::RegATypical => write!(f, "RegA-Typical"),
            RackCategory::RegAHigh => write!(f, "RegA-High"),
            RackCategory::RegB => write!(f, "RegB"),
        }
    }
}

/// One `(rack, hour)` observation produced by the sweep harness.
#[derive(Debug, Clone, PartialEq)]
pub struct RackHourObservation {
    /// Rack id within the region.
    pub rack_id: u32,
    /// Hour of day (0-23).
    pub hour: usize,
    /// The run analysis (bursts, contention, loss).
    pub analysis: RunAnalysis,
    /// The flattened result record (switch ground truth + analysis
    /// scalars) every aggregate consumer reads.
    pub outcome: RunOutcome,
}

/// Categorizes RegA racks by busy-hour average contention: the top
/// `high_fraction` (by value) become `RegAHigh`.
///
/// Input: `(rack_id, busy_hour_avg_contention)` pairs. Returns the rack
/// ids classified as high-contention.
pub fn categorize_rega_racks(
    busy_avgs: &[(u32, f64)],
    high_fraction: f64,
) -> std::collections::BTreeSet<u32> {
    let mut sorted: Vec<(u32, f64)> = busy_avgs.to_vec();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let n_high = ((sorted.len() as f64) * high_fraction).round() as usize;
    sorted
        .iter()
        .rev()
        .take(n_high)
        .map(|(id, _)| *id)
        .collect()
}

/// The Table 1 row for one region.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatasetSummary {
    /// SyncMillisampler runs collected.
    pub runs: u64,
    /// Per-server runs (runs × servers that produced data).
    pub server_runs: u64,
    /// Server runs containing at least one burst.
    pub bursty_server_runs: u64,
    /// Total bursts.
    pub bursts: u64,
    /// Total sample points (server runs × buckets).
    pub sample_points: u64,
}

impl DatasetSummary {
    /// Accumulates one rack-hour observation.
    pub fn add(&mut self, obs: &RackHourObservation, buckets: usize) {
        self.runs += 1;
        self.server_runs += obs.analysis.active_servers as u64;
        self.bursty_server_runs += obs.analysis.bursty_servers as u64;
        self.bursts += obs.analysis.bursts.len() as u64;
        self.sample_points += (obs.analysis.active_servers * buckets) as u64;
    }
}

/// The Table 2 row for one rack category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategorySummary {
    /// Total bursts in the category.
    pub bursts: u64,
    /// Contended bursts.
    pub contended: u64,
    /// Lossy bursts.
    pub lossy: u64,
}

impl CategorySummary {
    /// Accumulates one observation.
    pub fn add(&mut self, obs: &RackHourObservation) {
        for b in &obs.analysis.bursts {
            self.bursts += 1;
            if b.contended {
                self.contended += 1;
            }
            if b.lossy {
                self.lossy += 1;
            }
        }
    }

    /// Percentage of bursts contended.
    pub fn pct_contended(&self) -> f64 {
        if self.bursts == 0 {
            return f64::NAN;
        }
        100.0 * self.contended as f64 / self.bursts as f64
    }

    /// Percentage of bursts lossy.
    pub fn pct_lossy(&self) -> f64 {
        if self.bursts == 0 {
            return f64::NAN;
        }
        100.0 * self.lossy as f64 / self.bursts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorize_top_fraction_by_value() {
        let avgs: Vec<(u32, f64)> = (0..10).map(|i| (i, i as f64)).collect();
        let high = categorize_rega_racks(&avgs, 0.2);
        assert_eq!(high.into_iter().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn categorize_rounds_count() {
        let avgs: Vec<(u32, f64)> = (0..7).map(|i| (i, i as f64)).collect();
        // 20% of 7 = 1.4 → 1 rack.
        assert_eq!(categorize_rega_racks(&avgs, 0.2).len(), 1);
    }

    #[test]
    fn category_summary_percentages() {
        let mut s = CategorySummary {
            bursts: 200,
            contended: 150,
            lossy: 2,
        };
        assert!((s.pct_contended() - 75.0).abs() < 1e-12);
        assert!((s.pct_lossy() - 1.0).abs() < 1e-12);
        s.bursts = 0;
        assert!(s.pct_contended().is_nan());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(RackCategory::RegAHigh.to_string(), "RegA-High");
        assert_eq!(RackCategory::RegATypical.to_string(), "RegA-Typical");
        assert_eq!(RackCategory::RegB.to_string(), "RegB");
    }
}
