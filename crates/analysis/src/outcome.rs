//! The unified per-run result record: [`RunOutcome`].
//!
//! Before this module existed, three overlapping report shapes carried a
//! run's results: `RackSimReport` (simulation ground truth), the bench
//! harness's ad-hoc rows, and `RunAnalysis` (the §6–8 classification).
//! Sweeps had to thread all three around and every consumer re-derived
//! its own scalars. `RunOutcome` is the one flattened record a sweep
//! cell produces: simulation ground truth plus the analysis scalars,
//! with a single canonical codec encoding (for shipping results across
//! worker threads or storing them) and a single CSV row shape (for
//! aggregate output). The heavyweight series data stays in
//! [`RunAnalysis`] / `AlignedRackRun` and is dropped once the outcome is
//! extracted.

use crate::classify::RunAnalysis;
use millisampler::codec::{DecodeError, WireReader, WireWriter};
use ms_dcsim::PolicyKind;

/// Everything one sweep cell reports, flattened to scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Bytes the switch admitted over the window (SNMP-like ground truth).
    pub switch_ingress_bytes: u64,
    /// Bytes the switch discarded over the window.
    pub switch_discard_bytes: u64,
    /// Connection groups started.
    pub flows_started: u64,
    /// Connections completed.
    pub conns_completed: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Sampled ingress bytes across all servers.
    pub total_in_bytes: u64,
    /// Sampled retransmit-bit ingress bytes across all servers.
    pub total_retx_bytes: u64,
    /// Bursts detected (§5).
    pub bursts: u64,
    /// Bursts classified contended (§8).
    pub contended_bursts: u64,
    /// Bursts classified lossy (§8).
    pub lossy_bursts: u64,
    /// Average per-sample contention.
    pub contention_avg: f64,
    /// 90th-percentile per-sample contention.
    pub contention_p90: u32,
    /// Maximum per-sample contention.
    pub contention_max: u32,
    /// Servers with any traffic.
    pub active_servers: u32,
    /// Servers with at least one bursty sample.
    pub bursty_servers: u32,
    /// The buffer-sharing policy the cell's ToR ran (defaults to DT —
    /// stamp from the scenario spec when sweeping other policies).
    pub policy: PolicyKind,
}

const OUTCOME_MAGIC: &[u8; 4] = b"MSO1";

impl RunOutcome {
    /// Flattens a [`RunAnalysis`] plus the simulation ground-truth
    /// counters into one outcome record.
    pub fn from_analysis(
        analysis: &RunAnalysis,
        switch_ingress_bytes: u64,
        switch_discard_bytes: u64,
        flows_started: u64,
        conns_completed: u64,
        events: u64,
    ) -> Self {
        RunOutcome {
            switch_ingress_bytes,
            switch_discard_bytes,
            flows_started,
            conns_completed,
            events,
            total_in_bytes: analysis.total_in_bytes,
            total_retx_bytes: analysis.total_retx_bytes,
            bursts: analysis.bursts.len() as u64,
            contended_bursts: analysis.bursts.iter().filter(|b| b.contended).count() as u64,
            lossy_bursts: analysis.bursts.iter().filter(|b| b.lossy).count() as u64,
            contention_avg: analysis.contention_stats.avg,
            contention_p90: analysis.contention_stats.p90,
            contention_max: analysis.contention_stats.max,
            // simlint: allow(cast-truncation): server counts are rack-sized
            active_servers: analysis.active_servers as u32,
            // simlint: allow(cast-truncation): server counts are rack-sized
            bursty_servers: analysis.bursty_servers as u32,
            policy: PolicyKind::DtAlpha,
        }
    }

    /// An all-zero outcome (a run that produced no sampled data).
    pub fn empty() -> Self {
        RunOutcome {
            switch_ingress_bytes: 0,
            switch_discard_bytes: 0,
            flows_started: 0,
            conns_completed: 0,
            events: 0,
            total_in_bytes: 0,
            total_retx_bytes: 0,
            bursts: 0,
            contended_bursts: 0,
            lossy_bursts: 0,
            contention_avg: 0.0,
            contention_p90: 0,
            contention_max: 0,
            active_servers: 0,
            bursty_servers: 0,
            policy: PolicyKind::DtAlpha,
        }
    }

    /// Canonical codec encoding: identical outcomes encode to identical
    /// bytes, which is what lets the fleet merge assert byte-identity
    /// across thread counts.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_magic(OUTCOME_MAGIC);
        w.u64(self.switch_ingress_bytes);
        w.u64(self.switch_discard_bytes);
        w.u64(self.flows_started);
        w.u64(self.conns_completed);
        w.u64(self.events);
        w.u64(self.total_in_bytes);
        w.u64(self.total_retx_bytes);
        w.u64(self.bursts);
        w.u64(self.contended_bursts);
        w.u64(self.lossy_bursts);
        w.f64(self.contention_avg);
        w.u64(u64::from(self.contention_p90));
        w.u64(u64::from(self.contention_max));
        w.u64(u64::from(self.active_servers));
        w.u64(u64::from(self.bursty_servers));
        w.u64(self.policy.code());
        w.finish()
    }

    /// Decodes an outcome produced by [`RunOutcome::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(data);
        r.expect_magic(OUTCOME_MAGIC)?;
        Ok(RunOutcome {
            switch_ingress_bytes: r.u64()?,
            switch_discard_bytes: r.u64()?,
            flows_started: r.u64()?,
            conns_completed: r.u64()?,
            events: r.u64()?,
            total_in_bytes: r.u64()?,
            total_retx_bytes: r.u64()?,
            bursts: r.u64()?,
            contended_bursts: r.u64()?,
            lossy_bursts: r.u64()?,
            contention_avg: r.f64()?,
            // simlint: allow(cast-truncation): encoded from u32 fields
            contention_p90: r.u64()? as u32,
            // simlint: allow(cast-truncation): encoded from u32 fields
            contention_max: r.u64()? as u32,
            // simlint: allow(cast-truncation): encoded from u32 fields
            active_servers: r.u64()? as u32,
            // simlint: allow(cast-truncation): encoded from u32 fields
            bursty_servers: r.u64()? as u32,
            policy: PolicyKind::from_code(r.u64()?).ok_or(DecodeError::Overlong)?,
        })
    }

    /// The CSV column names matching [`RunOutcome::csv_cells`].
    pub const CSV_HEADER: &'static str = "switch_ingress_bytes,switch_discard_bytes,\
flows_started,conns_completed,events,total_in_bytes,total_retx_bytes,bursts,\
contended_bursts,lossy_bursts,contention_avg,contention_p90,contention_max,\
active_servers,bursty_servers,policy";

    /// One deterministic CSV row (floats at fixed precision, so the same
    /// outcome always prints the same bytes).
    pub fn csv_cells(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{}",
            self.switch_ingress_bytes,
            self.switch_discard_bytes,
            self.flows_started,
            self.conns_completed,
            self.events,
            self.total_in_bytes,
            self.total_retx_bytes,
            self.bursts,
            self.contended_bursts,
            self.lossy_bursts,
            self.contention_avg,
            self.contention_p90,
            self.contention_max,
            self.active_servers,
            self.bursty_servers,
            self.policy.label()
        )
    }

    /// Loss rate against switch-admitted bytes (NaN if the switch saw
    /// nothing).
    pub fn loss_rate(&self) -> f64 {
        if self.switch_ingress_bytes == 0 {
            return f64::NAN;
        }
        self.switch_discard_bytes as f64 / self.switch_ingress_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunOutcome {
        RunOutcome {
            switch_ingress_bytes: 123_456_789,
            switch_discard_bytes: 4_242,
            flows_started: 17,
            conns_completed: 160,
            events: 999_999,
            total_in_bytes: 120_000_000,
            total_retx_bytes: 3_000,
            bursts: 41,
            contended_bursts: 12,
            lossy_bursts: 3,
            contention_avg: 1.625,
            contention_p90: 3,
            contention_max: 5,
            active_servers: 8,
            bursty_servers: 6,
            policy: PolicyKind::FlexibleBounds,
        }
    }

    #[test]
    fn codec_round_trip_exact() {
        let o = sample();
        let enc = o.encode();
        assert_eq!(RunOutcome::decode(&enc).unwrap(), o);
        assert_eq!(enc, RunOutcome::decode(&enc).unwrap().encode());
    }

    #[test]
    fn decode_rejects_bad_magic_and_truncation() {
        assert!(RunOutcome::decode(b"NOPE").is_err());
        let mut enc = sample().encode();
        enc.truncate(enc.len() - 3);
        assert!(RunOutcome::decode(&enc).is_err());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = RunOutcome::CSV_HEADER.split(',').count();
        let row_cols = sample().csv_cells().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 16);
    }

    #[test]
    fn every_policy_kind_survives_the_codec() {
        for kind in PolicyKind::ALL {
            let mut o = sample();
            o.policy = kind;
            let back = RunOutcome::decode(&o.encode()).unwrap();
            assert_eq!(back.policy, kind);
            assert!(o.csv_cells().ends_with(kind.label()));
        }
    }

    #[test]
    fn csv_is_deterministic() {
        assert_eq!(sample().csv_cells(), sample().csv_cells());
        assert!(sample().csv_cells().contains("1.625000"));
    }

    #[test]
    fn loss_rate_handles_empty() {
        assert!(RunOutcome::empty().loss_rate().is_nan());
        let o = sample();
        assert!((o.loss_rate() - 4_242.0 / 123_456_789.0).abs() < 1e-15);
    }
}
