//! Joint burst/contention/loss classification (§8 methodology).
//!
//! * Each burst is associated with the **maximum contention level it
//!   experiences during its lifetime** (§8: "we consider the contention
//!   level at each sample point of the burst, and take the maximum").
//! * A burst is **contended** if it sees contention at any point in its
//!   lifetime (§6) — i.e. some sample of the burst has contention ≥ 2
//!   (itself plus at least one other bursty server).
//! * A burst is **lossy** if retransmit-bit bytes land on its server
//!   within the burst window extended by an RTT-scale slack (§4.6:
//!   "retransmissions ... indicate when losses are repaired, not when
//!   they occur ... our analysis must look for retransmissions that occur
//!   an RTT later").

use crate::burst::{detect_bursts, is_bursty_run, Burst};
use crate::contention::{contention_series, ContentionStats};
use millisampler::AlignedRackRun;
use ms_dcsim::Bps;

/// A burst with its §8 classification attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifiedBurst {
    /// The underlying burst.
    pub burst: Burst,
    /// Maximum contention over the burst's samples.
    pub max_contention: u32,
    /// Saw contention at any point (max_contention ≥ 2).
    pub contended: bool,
    /// Retransmit bytes observed in the loss-association window.
    pub retx_bytes: u64,
    /// Experienced loss (retx_bytes > 0).
    pub lossy: bool,
}

/// Per-server-run statistics (the unit of Figs. 6 and 8 and of the §6
/// utilization claims), kept compact so whole-region sweeps can drop the
/// raw series after analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerRunStats {
    /// Server index.
    pub server: usize,
    /// Number of bursts in this server run.
    pub bursts: usize,
    /// Average ingress utilization over the run (fraction of line rate).
    pub avg_utilization: f64,
    /// Average utilization inside bursty samples (NaN if none).
    pub util_inside_bursts: f64,
    /// Average utilization outside bursty samples (NaN if none).
    pub util_outside_bursts: f64,
    /// Mean estimated connections per sample inside bursts (NaN if none).
    pub conns_inside: f64,
    /// Mean estimated connections per sample outside bursts (NaN if none).
    pub conns_outside: f64,
}

/// Everything the §6–8 analyses need from one rack run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAnalysis {
    /// Per-sample contention.
    pub contention: Vec<u32>,
    /// Run-level contention statistics.
    pub contention_stats: ContentionStats,
    /// All classified bursts across servers.
    pub bursts: Vec<ClassifiedBurst>,
    /// Per-server-run stats for servers that saw any traffic.
    pub server_runs: Vec<ServerRunStats>,
    /// Servers that had at least one bursty sample.
    pub bursty_servers: usize,
    /// Servers with any traffic at all.
    pub active_servers: usize,
    /// Number of servers in the rack.
    pub num_servers: usize,
    /// Total ingress bytes over the run.
    pub total_in_bytes: u64,
    /// Total retransmit-bit ingress bytes over the run.
    pub total_retx_bytes: u64,
}

/// Analyzes one aligned rack run.
///
/// `loss_slack` is the number of buckets past the burst end in which a
/// retransmission is still attributed to the burst — RTT-to-RTO scale
/// (default recommendation: 5 buckets at 1 ms, covering the 4 ms
/// datacenter min-RTO).
pub fn analyze_run(run: &AlignedRackRun, link: Bps, loss_slack: usize) -> RunAnalysis {
    let contention = contention_series(run, link);
    let contention_stats = ContentionStats::from_series(&contention);
    let n = run.len();

    let mut bursts = Vec::new();
    let mut server_runs = Vec::new();
    let mut bursty_servers = 0usize;
    let mut active_servers = 0usize;
    let mut total_in = 0u64;
    let mut total_retx = 0u64;

    let threshold = crate::burst::burst_threshold(run.interval, link).as_u64();
    let capacity = run.interval.bytes_at_rate(link).as_u64().max(1) as f64;

    for server in &run.servers {
        total_in += server.total_in_bytes();
        total_retx += server.total_in_retx();
        if server.total_in_bytes() > 0 {
            active_servers += 1;
            let server_bursts = detect_bursts(server, link);
            let (conns_in, conns_out) = crate::burst::conns_inside_outside(server, link);
            let mut in_sum = (0u64, 0usize);
            let mut out_sum = (0u64, 0usize);
            for &b in &server.in_bytes {
                if b > threshold {
                    in_sum = (in_sum.0 + b, in_sum.1 + 1);
                } else {
                    out_sum = (out_sum.0 + b, out_sum.1 + 1);
                }
            }
            let util = |(sum, cnt): (u64, usize)| {
                if cnt == 0 {
                    f64::NAN
                } else {
                    sum as f64 / (cnt as f64 * capacity)
                }
            };
            server_runs.push(ServerRunStats {
                server: server.host as usize,
                bursts: server_bursts.len(),
                avg_utilization: server.avg_utilization(link),
                util_inside_bursts: util(in_sum),
                util_outside_bursts: util(out_sum),
                conns_inside: conns_in,
                conns_outside: conns_out,
            });
        }
        if is_bursty_run(server, link) {
            bursty_servers += 1;
        }
        for burst in detect_bursts(server, link) {
            let max_contention = contention[burst.start..burst.end()]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            let window_end = (burst.end() + loss_slack).min(n);
            let retx_bytes: u64 = server.in_retx[burst.start..window_end].iter().sum();
            bursts.push(ClassifiedBurst {
                burst,
                max_contention,
                contended: max_contention >= 2,
                retx_bytes,
                lossy: retx_bytes > 0,
            });
        }
    }

    RunAnalysis {
        contention,
        contention_stats,
        bursts,
        server_runs,
        bursty_servers,
        active_servers,
        num_servers: run.servers.len(),
        total_in_bytes: total_in,
        total_retx_bytes: total_retx,
    }
}

impl RunAnalysis {
    /// Fraction of bursts classified as contended.
    pub fn contended_fraction(&self) -> f64 {
        if self.bursts.is_empty() {
            return f64::NAN;
        }
        self.bursts.iter().filter(|b| b.contended).count() as f64 / self.bursts.len() as f64
    }

    /// Fraction of bursts classified as lossy.
    pub fn lossy_fraction(&self) -> f64 {
        if self.bursts.is_empty() {
            return f64::NAN;
        }
        self.bursts.iter().filter(|b| b.lossy).count() as f64 / self.bursts.len() as f64
    }

    /// Bursts per second, normalized per bursty server (Fig. 6's metric is
    /// per server run; this helper is for one run's rack-level rate).
    pub fn bursts_per_second(&self, interval: ms_dcsim::Ns) -> f64 {
        let duration_s = interval.as_secs_f64() * self.contention.len() as f64;
        if duration_s == 0.0 {
            return 0.0;
        }
        self.bursts.len() as f64 / duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use millisampler::HostSeries;
    use ms_dcsim::Ns;

    const LINK: Bps = Bps(12_500_000_000);
    const HI: u64 = 800_000;

    fn make_run(data: Vec<(Vec<u64>, Vec<u64>)>) -> AlignedRackRun {
        let n = data[0].0.len();
        let servers = data
            .into_iter()
            .enumerate()
            .map(|(h, (in_bytes, in_retx))| {
                let mut s = HostSeriesBuilder::new(h as u32, n);
                s.0.in_bytes = in_bytes;
                s.0.in_retx = in_retx;
                s.0
            })
            .collect();
        AlignedRackRun {
            rack: 0,
            start: Ns::ZERO,
            interval: Ns::from_millis(1),
            servers,
        }
    }

    struct HostSeriesBuilder(HostSeries);
    impl HostSeriesBuilder {
        fn new(h: u32, n: usize) -> Self {
            HostSeriesBuilder(HostSeries::zeroed(h, Ns::ZERO, Ns::from_millis(1), n))
        }
    }

    #[test]
    fn burst_contention_is_max_over_lifetime() {
        // Server 0 bursts over samples 1-3; server 1 bursts only at 2.
        let run = make_run(vec![
            (vec![0, HI, HI, HI, 0], vec![0; 5]),
            (vec![0, 0, HI, 0, 0], vec![0; 5]),
        ]);
        let a = analyze_run(&run, LINK, 0);
        let b0 = a.bursts.iter().find(|b| b.burst.server == 0).unwrap();
        assert_eq!(b0.max_contention, 2, "peak overlap at sample 2");
        assert!(b0.contended);
        let b1 = a.bursts.iter().find(|b| b.burst.server == 1).unwrap();
        assert_eq!(b1.max_contention, 2);
    }

    #[test]
    fn solo_burst_not_contended() {
        let run = make_run(vec![
            (vec![0, HI, 0], vec![0; 3]),
            (vec![0, 0, 0], vec![0; 3]),
        ]);
        let a = analyze_run(&run, LINK, 0);
        assert_eq!(a.bursts.len(), 1);
        assert!(!a.bursts[0].contended);
        assert_eq!(a.contended_fraction(), 0.0);
    }

    #[test]
    fn loss_attributed_within_slack_window() {
        // Burst at samples 1-2; retx arrives at sample 5 (RTO later).
        let mut in_retx = vec![0u64; 8];
        in_retx[5] = 3000;
        let run = make_run(vec![(vec![0, HI, HI, 0, 0, 0, 0, 0], in_retx)]);
        // Slack 2: window [1, 5) misses the retx.
        let tight = analyze_run(&run, LINK, 2);
        assert!(!tight.bursts[0].lossy);
        // Slack 5: window [1, 8) catches it.
        let wide = analyze_run(&run, LINK, 5);
        assert!(wide.bursts[0].lossy);
        assert_eq!(wide.bursts[0].retx_bytes, 3000);
    }

    #[test]
    fn slack_window_clamped_to_run_end() {
        let run = make_run(vec![(vec![0, 0, HI], vec![0, 0, 0])]);
        let a = analyze_run(&run, LINK, 100);
        assert_eq!(a.bursts.len(), 1);
        assert!(!a.bursts[0].lossy);
    }

    #[test]
    fn run_totals_and_server_counts() {
        let run = make_run(vec![
            (vec![HI, 0], vec![100, 0]),
            (vec![5, 5], vec![0, 0]),
            (vec![0, 0], vec![0, 0]),
        ]);
        let a = analyze_run(&run, LINK, 1);
        assert_eq!(a.num_servers, 3);
        assert_eq!(a.active_servers, 2);
        assert_eq!(a.bursty_servers, 1);
        assert_eq!(a.total_in_bytes, HI + 10);
        assert_eq!(a.total_retx_bytes, 100);
    }

    #[test]
    fn fractions_nan_without_bursts() {
        let run = make_run(vec![(vec![0, 0], vec![0, 0])]);
        let a = analyze_run(&run, LINK, 1);
        assert!(a.contended_fraction().is_nan());
        assert!(a.lossy_fraction().is_nan());
    }

    #[test]
    fn bursts_per_second_normalizes_by_duration() {
        let run = make_run(vec![(vec![HI, 0, HI, 0, HI, 0, 0, 0, 0, 0], vec![0; 10])]);
        let a = analyze_run(&run, LINK, 0);
        // 3 bursts in 10ms = 300/s.
        assert!((a.bursts_per_second(Ns::from_millis(1)) - 300.0).abs() < 1e-9);
    }
}
