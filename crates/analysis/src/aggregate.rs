//! Order-insensitive sweep aggregation shared by the in-memory and
//! lake-backed analysis paths.
//!
//! The lake's streaming query engine must reproduce the in-memory
//! analysis **bit-for-bit** (ms-lake's acceptance contract). That only
//! works if both paths fold rows through the *same* integer arithmetic
//! in the *same* order. [`SweepAggregate`] is that shared fold: plain
//! sums plus [`ms_telemetry::Histogram`]s (log-linear, integer-bucketed),
//! so every operation is exact and the result depends only on the
//! multiset of rows — the grid-order scan of a compacted lake and the
//! grid-order iteration of an in-memory sweep produce identical structs
//! and identical CSV bytes.
//!
//! The three headline analyses it recomputes (§6–§8 of the paper):
//!
//! * **Contention bimodality** (Fig. 9-style): histogram of per-run
//!   average contention, in per-mille so the fold stays integral.
//! * **Burst-size CDFs** (Fig. 5/7-style): histograms of burst length
//!   (buckets) and burst volume (bytes).
//! * **Loss vs. contention** (§8): per contention level, how many bursts
//!   saw it and how many of those were lossy.

use crate::classify::ClassifiedBurst;
use crate::outcome::RunOutcome;
use ms_telemetry::Histogram;

/// Contention levels tracked individually by the loss-vs-contention
/// table; the last level absorbs everything at or above it.
pub const CONTENTION_LEVELS: usize = 17;

/// One classified burst flattened to the scalars the lake stores — the
/// row shape of the lake's `bursts` table and the unit [`SweepAggregate`]
/// folds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstRow {
    /// Grid cell (sweep-global run index) the burst came from.
    pub cell: u32,
    /// Server (rack-local index).
    pub server: u32,
    /// First bucket index of the burst.
    pub start: u32,
    /// Length in buckets (≥ 1).
    pub len: u32,
    /// Total ingress bytes over the burst.
    pub bytes: u64,
    /// Mean estimated connections per sample inside the burst.
    pub avg_conns: f64,
    /// Maximum contention over the burst's samples.
    pub max_contention: u32,
    /// Saw contention at any point (`max_contention >= 2`).
    pub contended: bool,
    /// Experienced loss (`retx_bytes > 0`).
    pub lossy: bool,
    /// Retransmit bytes in the loss-association window.
    pub retx_bytes: u64,
}

impl BurstRow {
    /// Flattens one [`ClassifiedBurst`] for cell `cell`.
    pub fn from_classified(cell: u32, cb: &ClassifiedBurst) -> Self {
        BurstRow {
            cell,
            // simlint: allow(cast-truncation): rack-local server index
            server: cb.burst.server as u32,
            // simlint: allow(cast-truncation): bucket indices are run-sized
            start: cb.burst.start as u32,
            // simlint: allow(cast-truncation): bucket indices are run-sized
            len: cb.burst.len as u32,
            bytes: cb.burst.bytes,
            avg_conns: cb.burst.avg_conns,
            max_contention: cb.max_contention,
            contended: cb.contended,
            lossy: cb.lossy,
            retx_bytes: cb.retx_bytes,
        }
    }
}

/// The sweep-level fold: headline-analysis aggregates over any number of
/// run outcomes and burst rows.
///
/// `PartialEq` compares every field, so "results exactly equal" is a
/// single `assert_eq!`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregate {
    /// Cells folded in (successful runs).
    pub cells: u64,
    /// Cells that failed (panicked / produced no outcome).
    pub failed_cells: u64,
    /// Sum of switch-admitted bytes.
    pub switch_ingress_bytes: u64,
    /// Sum of switch-discarded bytes.
    pub switch_discard_bytes: u64,
    /// Sum of sampled ingress bytes.
    pub total_in_bytes: u64,
    /// Sum of sampled retransmit-bit bytes.
    pub total_retx_bytes: u64,
    /// Total bursts reported by outcomes.
    pub bursts: u64,
    /// Total contended bursts reported by outcomes.
    pub contended_bursts: u64,
    /// Total lossy bursts reported by outcomes.
    pub lossy_bursts: u64,
    /// Per-run average contention in per-mille (Fig. 9 bimodality).
    pub contention_avg_pm: Histogram,
    /// Burst lengths in buckets (burst-duration CDF).
    pub burst_len: Histogram,
    /// Burst volumes in bytes (burst-size CDF).
    pub burst_bytes: Histogram,
    /// Bursts seen per contention level (index = `max_contention`,
    /// clamped to [`CONTENTION_LEVELS`]` - 1`).
    pub bursts_by_contention: [u64; CONTENTION_LEVELS],
    /// Lossy bursts per contention level (same indexing).
    pub lossy_by_contention: [u64; CONTENTION_LEVELS],
}

impl Default for SweepAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        SweepAggregate {
            cells: 0,
            failed_cells: 0,
            switch_ingress_bytes: 0,
            switch_discard_bytes: 0,
            total_in_bytes: 0,
            total_retx_bytes: 0,
            bursts: 0,
            contended_bursts: 0,
            lossy_bursts: 0,
            contention_avg_pm: Histogram::new(),
            burst_len: Histogram::new(),
            burst_bytes: Histogram::new(),
            bursts_by_contention: [0; CONTENTION_LEVELS],
            lossy_by_contention: [0; CONTENTION_LEVELS],
        }
    }

    /// Folds one successful run outcome.
    pub fn add_outcome(&mut self, o: &RunOutcome) {
        self.cells += 1;
        self.switch_ingress_bytes += o.switch_ingress_bytes;
        self.switch_discard_bytes += o.switch_discard_bytes;
        self.total_in_bytes += o.total_in_bytes;
        self.total_retx_bytes += o.total_retx_bytes;
        self.bursts += o.bursts;
        self.contended_bursts += o.contended_bursts;
        self.lossy_bursts += o.lossy_bursts;
        // Per-mille keeps the fold integral: the f64 average round-trips
        // the lake bit-exactly (stored as raw bits), so this rounding is
        // reproducible on both paths.
        let pm = (o.contention_avg * 1000.0).round();
        self.contention_avg_pm
            .record(if pm >= 0.0 { pm as u64 } else { 0 });
    }

    /// Folds one failed cell (no outcome row).
    pub fn add_failed_cell(&mut self) {
        self.failed_cells += 1;
    }

    /// Folds one burst row.
    pub fn add_burst(&mut self, b: &BurstRow) {
        self.burst_len.record(u64::from(b.len));
        self.burst_bytes.record(b.bytes);
        let level = (b.max_contention as usize).min(CONTENTION_LEVELS - 1);
        self.bursts_by_contention[level] += 1;
        if b.lossy {
            self.lossy_by_contention[level] += 1;
        }
    }

    /// Fraction of folded bursts that were lossy (NaN when no bursts).
    pub fn lossy_fraction(&self) -> f64 {
        if self.bursts == 0 {
            return f64::NAN;
        }
        self.lossy_bursts as f64 / self.bursts as f64
    }

    /// Deterministic CSV export: `section,key,value` rows — scalar totals,
    /// then the non-empty buckets of each histogram, then the
    /// loss-vs-contention table. Identical aggregates print identical
    /// bytes.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("section,key,value\n");
        for (key, v) in [
            ("cells", self.cells),
            ("failed_cells", self.failed_cells),
            ("switch_ingress_bytes", self.switch_ingress_bytes),
            ("switch_discard_bytes", self.switch_discard_bytes),
            ("total_in_bytes", self.total_in_bytes),
            ("total_retx_bytes", self.total_retx_bytes),
            ("bursts", self.bursts),
            ("contended_bursts", self.contended_bursts),
            ("lossy_bursts", self.lossy_bursts),
        ] {
            let _ = writeln!(out, "totals,{key},{v}");
        }
        for (name, h) in [
            ("contention_avg_pm", &self.contention_avg_pm),
            ("burst_len", &self.burst_len),
            ("burst_bytes", &self.burst_bytes),
        ] {
            for (lo, count) in h.nonzero_buckets() {
                let _ = writeln!(out, "{name},{lo},{count}");
            }
        }
        for (level, (&n, &lossy)) in self
            .bursts_by_contention
            .iter()
            .zip(&self.lossy_by_contention)
            .enumerate()
        {
            if n > 0 || lossy > 0 {
                let _ = writeln!(out, "bursts_by_contention,{level},{n}");
                let _ = writeln!(out, "lossy_by_contention,{level},{lossy}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(contention_avg: f64, bursts: u64, lossy: u64) -> RunOutcome {
        let mut o = RunOutcome::empty();
        o.switch_ingress_bytes = 1000;
        o.switch_discard_bytes = 10;
        o.total_in_bytes = 900;
        o.total_retx_bytes = 5;
        o.bursts = bursts;
        o.lossy_bursts = lossy;
        o.contention_avg = contention_avg;
        o
    }

    fn burst(len: u32, bytes: u64, max_contention: u32, lossy: bool) -> BurstRow {
        BurstRow {
            cell: 0,
            server: 0,
            start: 0,
            len,
            bytes,
            avg_conns: 1.0,
            max_contention,
            contended: max_contention >= 2,
            lossy,
            retx_bytes: u64::from(lossy),
        }
    }

    #[test]
    fn fold_is_order_insensitive() {
        let rows = [
            burst(1, 100, 0, false),
            burst(3, 5_000, 2, true),
            burst(7, 900_000, 5, false),
        ];
        let outs = [outcome(0.5, 2, 1), outcome(2.25, 1, 0)];
        let mut fwd = SweepAggregate::new();
        let mut rev = SweepAggregate::new();
        for o in &outs {
            fwd.add_outcome(o);
        }
        for b in &rows {
            fwd.add_burst(b);
        }
        for o in outs.iter().rev() {
            rev.add_outcome(o);
        }
        for b in rows.iter().rev() {
            rev.add_burst(b);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_csv(), rev.to_csv());
    }

    #[test]
    fn totals_and_loss_table() {
        let mut a = SweepAggregate::new();
        a.add_outcome(&outcome(1.5, 3, 2));
        a.add_failed_cell();
        a.add_burst(&burst(2, 10, 1, false));
        a.add_burst(&burst(2, 10, 3, true));
        a.add_burst(&burst(2, 10, 99, true)); // clamps to the top level
        assert_eq!(a.cells, 1);
        assert_eq!(a.failed_cells, 1);
        assert_eq!(a.bursts, 3);
        assert_eq!(a.bursts_by_contention[1], 1);
        assert_eq!(a.bursts_by_contention[3], 1);
        assert_eq!(a.bursts_by_contention[CONTENTION_LEVELS - 1], 1);
        assert_eq!(a.lossy_by_contention[3], 1);
        assert_eq!(a.lossy_by_contention[CONTENTION_LEVELS - 1], 1);
        assert!((a.lossy_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // Per-mille histogram saw 1500.
        assert_eq!(a.contention_avg_pm.total(), 1);
        assert_eq!(a.contention_avg_pm.max(), 1500);
    }

    #[test]
    fn csv_sections_are_complete_and_deterministic() {
        let mut a = SweepAggregate::new();
        a.add_outcome(&outcome(0.0, 1, 0));
        a.add_burst(&burst(4, 64, 2, true));
        let csv = a.to_csv();
        assert!(csv.starts_with("section,key,value\n"));
        assert!(csv.contains("totals,cells,1"));
        assert!(csv.contains("burst_len,4,1"));
        assert!(csv.contains("burst_bytes,64,1"));
        assert!(csv.contains("bursts_by_contention,2,1"));
        assert!(csv.contains("lossy_by_contention,2,1"));
        assert_eq!(csv, a.clone().to_csv());
    }

    #[test]
    fn from_classified_flattens_every_field() {
        let cb = ClassifiedBurst {
            burst: crate::burst::Burst {
                server: 3,
                start: 17,
                len: 4,
                bytes: 123_456,
                avg_conns: 2.5,
            },
            max_contention: 6,
            contended: true,
            retx_bytes: 77,
            lossy: true,
        };
        let row = BurstRow::from_classified(9, &cb);
        assert_eq!(row.cell, 9);
        assert_eq!(row.server, 3);
        assert_eq!(row.start, 17);
        assert_eq!(row.len, 4);
        assert_eq!(row.bytes, 123_456);
        assert!((row.avg_conns - 2.5).abs() < f64::EPSILON);
        assert_eq!(row.max_contention, 6);
        assert!(row.contended && row.lossy);
        assert_eq!(row.retx_bytes, 77);
    }
}
