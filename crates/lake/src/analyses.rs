//! Out-of-core recomputation of the paper's headline analyses.
//!
//! Both entry points stream lake chunks through the *same*
//! [`SweepAggregate`] integer fold the in-memory path uses, so the
//! result is bit-for-bit equal to folding the original `RunOutcome`s
//! and `BurstRow`s directly — over a lake of any size, holding at most
//! one chunk per open column.

use crate::query::{Batch, Operator, TableScan};
use crate::segment::TableKind;
use crate::writer::Lake;
use crate::LakeError;
use millisampler::HostSeries;
use ms_analysis::{BurstRow, RunOutcome, SweepAggregate};
use ms_dcsim::{Ns, PolicyKind, SimRng};

// Column indices of the `outcomes` table (on-disk order; see
// `segment::OUTCOME_COLS`).
const OC_STATUS: usize = 1;
const OC_LABEL: usize = 2;
const OC_FIRST_METRIC: usize = 4; // switch_ingress_bytes

/// Streams the whole lake through the shared sweep fold: contention
/// bimodality, burst-size CDFs, and the loss-vs-contention table.
pub fn lake_sweep_aggregate(lake: &Lake) -> Result<SweepAggregate, LakeError> {
    let mut agg = SweepAggregate::new();
    let mut batch = Batch::new();

    let mut outcomes = TableScan::full(lake, TableKind::Outcomes)?;
    while outcomes.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            if batch.value(OC_STATUS, row) != 0 {
                agg.add_failed_cell();
                continue;
            }
            agg.add_outcome(&outcome_from_row(&batch, row));
        }
    }

    let mut bursts = TableScan::full(lake, TableKind::Bursts)?;
    while bursts.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            agg.add_burst(&burst_from_row(&batch, row));
        }
    }
    Ok(agg)
}

/// Reconstructs a [`RunOutcome`] from a full-projection outcomes row.
/// Inverse of the flattening in `writer::append_cell`; floats come back
/// from their stored bit patterns, so the round trip is exact.
fn outcome_from_row(batch: &Batch, row: usize) -> RunOutcome {
    let m = |i: usize| batch.value(OC_FIRST_METRIC + i, row);
    RunOutcome {
        switch_ingress_bytes: m(0),
        switch_discard_bytes: m(1),
        flows_started: m(2),
        conns_completed: m(3),
        events: m(4),
        total_in_bytes: m(5),
        total_retx_bytes: m(6),
        bursts: m(7),
        contended_bursts: m(8),
        lossy_bursts: m(9),
        contention_avg: f64::from_bits(m(10)),
        // simlint: allow(cast-truncation): stored from u32 fields
        contention_p90: m(11) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        contention_max: m(12) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        active_servers: m(13) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        bursty_servers: m(14) as u32,
        // An unknown code means a lake written by a newer schema; fall
        // back to DT rather than refusing the whole scan.
        policy: PolicyKind::from_code(m(15)).unwrap_or(PolicyKind::DtAlpha),
    }
}

/// Scans the outcomes table into a `(cell, policy)` list, in cell
/// order — the join key that lets forensics rows (which carry no
/// policy column) be attributed per policy.
fn cell_policies(lake: &Lake) -> Result<Vec<(u64, PolicyKind)>, LakeError> {
    let cell_col = TableKind::Outcomes
        .column("cell")
        .ok_or(LakeError::Corrupt("outcomes table has no cell column"))?;
    let policy_col = TableKind::Outcomes
        .column("policy")
        .ok_or(LakeError::Corrupt("outcomes table has no policy column"))?;
    let mut out = Vec::new();
    let mut scan = TableScan::new(
        lake,
        TableKind::Outcomes,
        &[cell_col, policy_col],
        Vec::new(),
    )?;
    let mut batch = Batch::new();
    while scan.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            let policy = PolicyKind::from_code(batch.value(1, row)).unwrap_or(PolicyKind::DtAlpha);
            out.push((batch.value(0, row), policy));
        }
    }
    Ok(out)
}

/// Policy of `cell` in a [`cell_policies`] list (cells are compacted in
/// ascending order, so this is a binary search); DT when absent.
fn policy_of(cells: &[(u64, PolicyKind)], cell: u64) -> PolicyKind {
    cells
        .binary_search_by_key(&cell, |&(c, _)| c)
        .map(|i| cells[i].1)
        .unwrap_or(PolicyKind::DtAlpha)
}

/// Reconstructs a [`BurstRow`] from a full-projection bursts row.
fn burst_from_row(batch: &Batch, row: usize) -> BurstRow {
    let v = |i: usize| batch.value(i, row);
    BurstRow {
        // simlint: allow(cast-truncation): stored from u32 fields
        cell: v(0) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        server: v(1) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        start: v(2) as u32,
        // simlint: allow(cast-truncation): stored from u32 fields
        len: v(3) as u32,
        bytes: v(4),
        avg_conns: f64::from_bits(v(5)),
        // simlint: allow(cast-truncation): stored from u32 fields
        max_contention: v(6) as u32,
        contended: v(7) != 0,
        lossy: v(8) != 0,
        retx_bytes: v(9),
    }
}

/// Streams the outcomes table back out as the exact CSV the in-memory
/// `FleetReport::to_csv` renders — same header, same row order (the
/// lake is compacted in cell order, which is grid order), same bytes.
pub fn outcomes_csv(lake: &Lake) -> Result<String, LakeError> {
    let mut out = String::new();
    out.push_str("label,status,");
    out.push_str(RunOutcome::CSV_HEADER);
    out.push('\n');
    let empty_cells = RunOutcome::CSV_HEADER.matches(',').count() + 1;

    let mut scan = TableScan::full(lake, TableKind::Outcomes)?;
    let mut batch = Batch::new();
    while scan.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            let label_id = batch.value(OC_LABEL, row);
            let label = usize::try_from(label_id)
                .ok()
                .and_then(|i| scan.dict().get(i))
                .ok_or(LakeError::Corrupt("label id not in dictionary"))?;
            out.push_str(label);
            if batch.value(OC_STATUS, row) == 0 {
                out.push_str(",ok,");
                out.push_str(&outcome_from_row(&batch, row).csv_cells());
            } else {
                out.push_str(",failed");
                for _ in 0..empty_cells {
                    out.push(',');
                }
            }
            out.push('\n');
        }
    }
    Ok(out)
}

// Column indices of the `forensics` table (on-disk order; see
// `segment::FORENSIC_COLS`).
const FO_CELL: usize = 0;
const FO_QUEUE: usize = 2;
const FO_REASON: usize = 5;
const FO_CAUSE: usize = 6;

/// One cell's drop-attribution counts from the lake's forensics table:
/// how many drops §8 classifies as each cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellAttribution {
    /// Sweep-global cell index.
    pub cell: u64,
    /// Drops where the victim flow's own burst dominated the window.
    pub self_burst: u64,
    /// Drops where competing flows dominated the window.
    pub cross_contention: u64,
    /// Drops away from the shared-buffer switch (fabric FIFO, NIC fault).
    pub fabric_transient: u64,
}

impl CellAttribution {
    /// All classified drops in the cell.
    pub fn total(&self) -> u64 {
        self.self_burst + self.cross_contention + self.fabric_transient
    }
}

/// Streams the forensics table into a per-cell attribution histogram —
/// the paper's §8 loss split, recomputed out-of-core. Rows come back in
/// cell order (the lake is compacted in cell order); cells with no
/// forensics are absent.
pub fn lake_loss_attribution(lake: &Lake) -> Result<Vec<CellAttribution>, LakeError> {
    let mut out: Vec<CellAttribution> = Vec::new();
    let mut scan = TableScan::new(lake, TableKind::Forensics, &[FO_CELL, FO_CAUSE], Vec::new())?;
    let mut batch = Batch::new();
    while scan.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            let cell = batch.value(0, row);
            if out.last().map_or(true, |a| a.cell != cell) {
                out.push(CellAttribution {
                    cell,
                    ..CellAttribution::default()
                });
            }
            let a = out
                .last_mut()
                .ok_or(LakeError::Corrupt("empty attribution"))?;
            match batch.value(1, row) {
                0 => a.self_burst += 1,
                1 => a.cross_contention += 1,
                2 => a.fabric_transient += 1,
                _ => return Err(LakeError::Corrupt("bad cause code in forensics table")),
            }
        }
    }
    Ok(out)
}

/// Renders [`lake_loss_attribution`] as deterministic CSV, each cell
/// joined with the buffer policy its outcome row recorded.
pub fn attribution_csv(lake: &Lake) -> Result<String, LakeError> {
    use std::fmt::Write;
    let policies = cell_policies(lake)?;
    let mut out = String::from("cell,policy,self_burst,cross_contention,fabric_transient,total\n");
    for a in lake_loss_attribution(lake)? {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            a.cell,
            policy_of(&policies, a.cell).label(),
            a.self_burst,
            a.cross_contention,
            a.fabric_transient,
            a.total()
        );
    }
    Ok(out)
}

/// One cell's drop counts split by the switch tier that discarded — ToR,
/// agg, or spine per the tier code packed into each forensic's queue id
/// (see `ms_telemetry::qid`), plus off-switch drops (fabric FIFO, NIC
/// fault), which are routed by their `FabricTransient` cause rather than
/// by queue id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellTierDrops {
    /// Sweep-global cell index.
    pub cell: u64,
    /// Drops at top-of-rack switches (and the legacy single-rack ToR).
    pub tor: u64,
    /// Drops at pod aggregation switches.
    pub agg: u64,
    /// Drops at spine switches.
    pub spine: u64,
    /// Drops away from any shared-buffer switch.
    pub offswitch: u64,
}

impl CellTierDrops {
    /// All classified drops in the cell.
    pub fn total(&self) -> u64 {
        self.tor + self.agg + self.spine + self.offswitch
    }
}

/// Streams the forensics table into per-cell tier histograms — where in
/// the fat tree each cell's loss happened. Rows come back in cell order;
/// cells with no forensics are absent.
pub fn lake_tier_drops(lake: &Lake) -> Result<Vec<CellTierDrops>, LakeError> {
    let mut out: Vec<CellTierDrops> = Vec::new();
    let mut scan = TableScan::new(
        lake,
        TableKind::Forensics,
        &[FO_CELL, FO_QUEUE, FO_CAUSE],
        Vec::new(),
    )?;
    let mut batch = Batch::new();
    while scan.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            let cell = batch.value(0, row);
            if out.last().map_or(true, |a| a.cell != cell) {
                out.push(CellTierDrops {
                    cell,
                    ..CellTierDrops::default()
                });
            }
            let a = out.last_mut().ok_or(LakeError::Corrupt("empty tiers"))?;
            let offswitch =
                batch.value(2, row) == u64::from(ms_telemetry::DropCause::FabricTransient.code());
            if offswitch {
                a.offswitch += 1;
                continue;
            }
            let qid = u32::try_from(batch.value(1, row))
                .map_err(|_| LakeError::Corrupt("bad queue id in forensics table"))?;
            match ms_telemetry::qid::qid_tier(qid) {
                ms_telemetry::qid::TIER_TOR => a.tor += 1,
                ms_telemetry::qid::TIER_AGG => a.agg += 1,
                ms_telemetry::qid::TIER_SPINE => a.spine += 1,
                _ => return Err(LakeError::Corrupt("bad tier code in forensics table")),
            }
        }
    }
    Ok(out)
}

/// Renders [`lake_tier_drops`] as deterministic CSV, one row per cell
/// with any classified drops.
pub fn tiers_csv(lake: &Lake) -> Result<String, LakeError> {
    use std::fmt::Write;
    let mut out = String::from("cell,tor,agg,spine,offswitch,total\n");
    for a in lake_tier_drops(lake)? {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            a.cell,
            a.tor,
            a.agg,
            a.spine,
            a.offswitch,
            a.total()
        );
    }
    Ok(out)
}

/// Per-policy rollup of one sweep: loss, bursts, and the §8 drop
/// attribution, folded across every cell that ran the policy. One CSV
/// row per policy present in the lake, in policy-code order — the
/// "does buffer sharing move cross-contention loss?" table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCompare {
    /// The buffer policy this row aggregates.
    pub policy: PolicyKind,
    /// Completed cells that ran this policy.
    pub cells: u64,
    /// Switch-admitted bytes summed over those cells.
    pub ingress_bytes: u64,
    /// Switch-discarded bytes summed over those cells.
    pub discard_bytes: u64,
    /// Bursts detected, summed.
    pub bursts: u64,
    /// Bursts classified contended, summed.
    pub contended_bursts: u64,
    /// Bursts classified lossy, summed.
    pub lossy_bursts: u64,
    /// Drops §8 attributes to the victim's own burst.
    pub self_burst: u64,
    /// Drops §8 attributes to competing flows.
    pub cross_contention: u64,
    /// Drops away from the shared-buffer switch.
    pub fabric_transient: u64,
}

impl PolicyCompare {
    /// Discarded bytes over admitted bytes (NaN when nothing arrived).
    pub fn loss_rate(&self) -> f64 {
        if self.ingress_bytes == 0 {
            return f64::NAN;
        }
        self.discard_bytes as f64 / self.ingress_bytes as f64
    }

    /// Cross-contention share of all attributed drops (NaN when none).
    pub fn cross_share(&self) -> f64 {
        let total = self.self_burst + self.cross_contention + self.fabric_transient;
        if total == 0 {
            return f64::NAN;
        }
        self.cross_contention as f64 / total as f64
    }
}

/// Folds the outcomes and forensics tables into one [`PolicyCompare`]
/// per policy present in the lake, in policy-code order. Failed cells
/// are excluded (their rows carry no real outcome).
pub fn lake_policy_compare(lake: &Lake) -> Result<Vec<PolicyCompare>, LakeError> {
    let mut per: [Option<PolicyCompare>; PolicyKind::ALL.len()] = [None; PolicyKind::ALL.len()];
    let slot =
        |per: &mut [Option<PolicyCompare>; PolicyKind::ALL.len()], policy: PolicyKind| -> usize {
            let i = policy.code() as usize;
            if per[i].is_none() {
                per[i] = Some(PolicyCompare {
                    policy,
                    cells: 0,
                    ingress_bytes: 0,
                    discard_bytes: 0,
                    bursts: 0,
                    contended_bursts: 0,
                    lossy_bursts: 0,
                    self_burst: 0,
                    cross_contention: 0,
                    fabric_transient: 0,
                });
            }
            i
        };

    let mut outcomes = TableScan::full(lake, TableKind::Outcomes)?;
    let mut batch = Batch::new();
    while outcomes.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            if batch.value(OC_STATUS, row) != 0 {
                continue;
            }
            let o = outcome_from_row(&batch, row);
            let i = slot(&mut per, o.policy);
            let p = per[i].as_mut().expect("slot initialised above");
            p.cells += 1;
            p.ingress_bytes += o.switch_ingress_bytes;
            p.discard_bytes += o.switch_discard_bytes;
            p.bursts += o.bursts;
            p.contended_bursts += o.contended_bursts;
            p.lossy_bursts += o.lossy_bursts;
        }
    }

    let policies = cell_policies(lake)?;
    for a in lake_loss_attribution(lake)? {
        let i = slot(&mut per, policy_of(&policies, a.cell));
        let p = per[i].as_mut().expect("slot initialised above");
        p.self_burst += a.self_burst;
        p.cross_contention += a.cross_contention;
        p.fabric_transient += a.fabric_transient;
    }

    Ok(per.into_iter().flatten().collect())
}

/// Renders [`lake_policy_compare`] as deterministic CSV (fixed float
/// precision, policy-code row order).
pub fn policy_compare_csv(lake: &Lake) -> Result<String, LakeError> {
    use std::fmt::Write;
    let mut out = String::from(
        "policy,cells,ingress_bytes,discard_bytes,loss_rate,bursts,contended_bursts,\
         lossy_bursts,self_burst,cross_contention,fabric_transient,cross_share\n",
    );
    for p in lake_policy_compare(lake)? {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{},{},{},{},{:.6}",
            p.policy.label(),
            p.cells,
            p.ingress_bytes,
            p.discard_bytes,
            p.loss_rate(),
            p.bursts,
            p.contended_bursts,
            p.lossy_bursts,
            p.self_burst,
            p.cross_contention,
            p.fabric_transient,
            p.cross_share()
        );
    }
    Ok(out)
}

/// Streams the forensics table back out as CSV, one row per classified
/// drop, with reason/cause codes rendered as their stable names.
pub fn forensics_csv(lake: &Lake) -> Result<String, LakeError> {
    use ms_telemetry::{DropCause, DropReason};
    use std::fmt::Write;
    let mut out = String::new();
    let cols = TableKind::Forensics.columns();
    out.push_str(&cols.join(","));
    out.push('\n');
    let mut scan = TableScan::full(lake, TableKind::Forensics)?;
    let mut batch = Batch::new();
    while scan.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            for col in 0..cols.len() {
                if col > 0 {
                    out.push(',');
                }
                let v = batch.value(col, row);
                match col {
                    FO_REASON => {
                        let reason = DropReason::ALL
                            .iter()
                            .find(|r| u64::from(r.code()) == v)
                            .ok_or(LakeError::Corrupt("bad reason code in forensics table"))?;
                        out.push_str(reason.as_str());
                    }
                    FO_CAUSE => {
                        let cause = u8::try_from(v)
                            .ok()
                            .and_then(DropCause::from_code)
                            .ok_or(LakeError::Corrupt("bad cause code in forensics table"))?;
                        out.push_str(cause.as_str());
                    }
                    _ => {
                        let _ = write!(out, "{v}");
                    }
                }
            }
            out.push('\n');
        }
    }
    Ok(out)
}

/// Synthesizes `hosts` smooth diurnal millisampler series of `buckets`
/// samples each — the bench corpus for the lake's compression-ratio
/// gate. Deterministic in `seed`; integer arithmetic only (a triangular
/// day-cycle plus bounded jitter), so identical inputs give identical
/// series on every platform. The smoothness is the point: real rack
/// traffic has strong bucket-to-bucket correlation, which is what the
/// delta encoding exploits.
pub fn synth_diurnal_series(
    seed: u64,
    hosts: u32,
    buckets: usize,
    interval: Ns,
) -> Vec<HostSeries> {
    const DAY_MS: u64 = 86_400_000;
    let mut root = SimRng::new(seed);
    let mut out = Vec::with_capacity(hosts as usize);
    for host in 0..hosts {
        let mut rng = root.fork(u64::from(host));
        let mut s = HostSeries::zeroed(host, Ns::ZERO, interval, buckets);
        for b in 0..buckets {
            let t_ms = (b as u64).wrapping_mul(interval.as_millis()) % DAY_MS;
            // Triangular diurnal load factor in [0, HALF_DAY].
            let half = DAY_MS / 2;
            let tri = if t_ms < half { t_ms } else { DAY_MS - t_ms };
            // Scale to a byte rate: quiet troughs ~50 kB, busy peaks ~1 MB.
            let base = 50_000 + tri * 950_000 / half;
            let jitter = rng.gen_range(base / 8 + 1);
            s.in_bytes[b] = base + jitter;
            s.out_bytes[b] = base / 2 + rng.gen_range(base / 16 + 1);
            s.conns[b] = 4 + tri * 28 / half + rng.gen_range(3);
            // Rare loss and ECN marks, denser at peak load.
            if rng.gen_range(DAY_MS) < tri / 4 {
                s.in_retx[b] = 1460 * (1 + rng.gen_range(4));
            }
            if rng.gen_range(DAY_MS) < tri {
                s.in_ecn[b] = 1460 * (1 + rng.gen_range(8));
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::CellRows;
    use crate::writer::{LakeConfig, LakeWriter};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        // simlint: allow(env-read): tests write scratch lakes
        let base = std::env::temp_dir();
        let dir = base.join(format!("ms-lake-analyses-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn outcome(i: u64) -> RunOutcome {
        let mut o = RunOutcome::empty();
        o.switch_ingress_bytes = 1000 * i;
        o.switch_discard_bytes = i;
        o.bursts = i % 4;
        o.lossy_bursts = i % 2;
        o.contention_avg = i as f64 * 0.37;
        o.contention_max = i as u32;
        o
    }

    fn burst(cell: u64, i: u32) -> BurstRow {
        BurstRow {
            cell: cell as u32,
            server: i,
            start: i * 3,
            len: 1 + i % 5,
            bytes: 10_000 * u64::from(i + 1),
            avg_conns: f64::from(i) * 0.5 + 1.0,
            max_contention: i % 7,
            contended: i % 7 >= 2,
            lossy: i % 3 == 0,
            retx_bytes: u64::from(i % 3 == 0) * 1460,
        }
    }

    fn forensic(cell: u64, i: u64) -> ms_telemetry::DropForensic {
        use ms_telemetry::{DropCause, DropReason};
        let cause = DropCause::from_code((i % 3) as u8).unwrap();
        ms_telemetry::DropForensic {
            ns: cell * 1_000_000 + i,
            queue: (i % 4) as u32,
            flow: cell * 10 + i,
            size: 1500,
            reason: DropReason::DynamicThresholdReject,
            cause,
            queue_occupancy: 50_000 + i,
            shared_occupancy: 120_000 + i,
            dt_threshold: 48_000,
            burst_len: 1 + (i % 7) as u32,
            competing_flows: (i % 5) as u32,
            self_bytes: 3_000 * i,
            other_bytes: 9_000 * i,
            ecn_on: i % 2 == 0,
            recent_kinds: 0x0101 * i,
        }
    }

    /// Builds a lake and the in-memory fold over the same rows.
    fn build(dir: &PathBuf, cells: u64) -> (Lake, SweepAggregate) {
        let w = LakeWriter::create(
            dir,
            LakeConfig {
                chunk_rows: 8,
                segment_rows: 16,
            },
        )
        .unwrap();
        let mut expect = SweepAggregate::new();
        let mut shard = w.shard_writer(0).unwrap();
        for c in 0..cells {
            let rows = if c % 5 == 4 {
                expect.add_failed_cell();
                CellRows::failed(c, &format!("cell-{c}"), String::from("boom"))
            } else {
                let o = outcome(c);
                let bursts: Vec<BurstRow> = (0..(c % 4) as u32).map(|i| burst(c, i)).collect();
                expect.add_outcome(&o);
                for b in &bursts {
                    expect.add_burst(b);
                }
                CellRows {
                    cell: c,
                    label: format!("cell-{c}"),
                    outcome: Some(Ok(o)),
                    bursts,
                    series: Vec::new(),
                    forensics: (0..(c % 3)).map(|i| forensic(c, i)).collect(),
                }
            };
            shard.append(&rows).unwrap();
        }
        shard.finish().unwrap();
        w.compact().unwrap();
        (Lake::open(dir).unwrap(), expect)
    }

    #[test]
    fn lake_aggregate_matches_in_memory_fold_bit_for_bit() {
        let dir = temp_dir("agg");
        let (lake, expect) = build(&dir, 23);
        let got = lake_sweep_aggregate(&lake).unwrap();
        assert_eq!(got, expect);
        assert_eq!(got.to_csv(), expect.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcomes_csv_matches_fleet_report_shape() {
        let dir = temp_dir("csv");
        let (lake, _) = build(&dir, 7);
        let csv = outcomes_csv(&lake).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 8); // header + 7 cells in cell order
        assert!(lines[0].starts_with("label,status,switch_ingress_bytes"));
        assert!(lines[1].starts_with("cell-0,ok,"));
        assert!(lines[5].starts_with("cell-4,failed,"));
        let header_cols = lines[0].matches(',').count();
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), header_cols, "bad row: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loss_attribution_folds_the_forensics_table_per_cell() {
        let dir = temp_dir("attr");
        // build() gives cell c (c % 3) forensics with causes cycling
        // 0,1,2 — so cells with 1 forensic are pure self-burst, cells
        // with 2 add one cross-contention, and cells c % 3 == 0 are
        // absent from the histogram.
        let (lake, _) = build(&dir, 9);
        let attr = lake_loss_attribution(&lake).unwrap();
        let cells: Vec<u64> = attr.iter().map(|a| a.cell).collect();
        assert_eq!(cells, vec![1, 2, 5, 7, 8]); // c%3 != 0, minus failed cells 4
        for a in &attr {
            assert_eq!(a.self_burst, 1);
            assert_eq!(a.cross_contention, u64::from(a.cell % 3 == 2));
            assert_eq!(a.fabric_transient, 0);
            assert_eq!(a.total(), a.cell % 3);
        }
        let csv = attribution_csv(&lake).unwrap();
        assert!(csv.starts_with("cell,policy,self_burst,cross_contention,fabric_transient,total\n"));
        // build() writes default-policy outcomes, so the join column is dt.
        assert!(csv.contains("\n2,dt,1,1,0,2\n"), "{csv}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_drops_split_by_packed_queue_id() {
        use ms_telemetry::qid::{pack_qid, OFFSWITCH_QID, TIER_AGG, TIER_SPINE, TIER_TOR};
        let dir = temp_dir("tiers");
        let w = LakeWriter::create(
            &dir,
            LakeConfig {
                chunk_rows: 8,
                segment_rows: 16,
            },
        )
        .unwrap();
        let mk = |queue: u32, cause_code: u8| {
            let mut f = forensic(0, 0);
            f.queue = queue;
            f.cause = ms_telemetry::DropCause::from_code(cause_code).unwrap();
            f
        };
        let mut shard = w.shard_writer(0).unwrap();
        shard
            .append(&CellRows {
                cell: 0,
                label: String::from("cell-0"),
                outcome: Some(Ok(outcome(1))),
                bursts: Vec::new(),
                series: Vec::new(),
                forensics: vec![
                    mk(pack_qid(TIER_TOR, 0, 1), 1),
                    mk(pack_qid(TIER_AGG, 5, 2), 1),
                    mk(pack_qid(TIER_AGG, 5, 2), 0),
                    mk(pack_qid(TIER_SPINE, 3, 0), 1),
                    // Off-switch drops route by cause, not queue id.
                    mk(OFFSWITCH_QID, 2),
                    // Legacy single-rack forensics carry a bare port id.
                    mk(7, 1),
                ],
            })
            .unwrap();
        shard.finish().unwrap();
        w.compact().unwrap();
        let lake = Lake::open(&dir).unwrap();
        let rows = lake_tier_drops(&lake).unwrap();
        assert_eq!(
            rows,
            vec![CellTierDrops {
                cell: 0,
                tor: 2,
                agg: 2,
                spine: 1,
                offswitch: 1,
            }]
        );
        assert_eq!(
            tiers_csv(&lake).unwrap(),
            "cell,tor,agg,spine,offswitch,total\n0,2,2,1,1,6\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_compare_folds_outcomes_and_attribution_per_policy() {
        use ms_dcsim::PolicyKind;
        let dir = temp_dir("pcmp");
        let w = LakeWriter::create(
            &dir,
            LakeConfig {
                chunk_rows: 8,
                segment_rows: 16,
            },
        )
        .unwrap();
        // Six cells alternating dt / fb (cell % 2), each with (c % 3)
        // forensics cycling causes 0,1,2 — plus one failed cell that
        // must not count toward either policy.
        let mut shard = w.shard_writer(0).unwrap();
        for c in 0..6u64 {
            let mut o = outcome(c + 1);
            o.policy = if c % 2 == 0 {
                PolicyKind::DtAlpha
            } else {
                PolicyKind::FlexibleBounds
            };
            shard
                .append(&CellRows {
                    cell: c,
                    label: format!("cell-{c}"),
                    outcome: Some(Ok(o)),
                    bursts: Vec::new(),
                    series: Vec::new(),
                    forensics: (0..(c % 3)).map(|i| forensic(c, i)).collect(),
                })
                .unwrap();
        }
        shard
            .append(&CellRows::failed(6, "cell-6", String::from("boom")))
            .unwrap();
        shard.finish().unwrap();
        w.compact().unwrap();
        let lake = Lake::open(&dir).unwrap();

        let rows = lake_policy_compare(&lake).unwrap();
        assert_eq!(rows.len(), 2);
        let dt = &rows[0];
        let fb = &rows[1];
        assert_eq!(dt.policy, PolicyKind::DtAlpha);
        assert_eq!(fb.policy, PolicyKind::FlexibleBounds);
        // Cells 0,2,4 are dt (outcome indices 1,3,5); 1,3,5 are fb
        // (outcome indices 2,4,6). outcome(i) has ingress 1000*i.
        assert_eq!(dt.cells, 3);
        assert_eq!(fb.cells, 3);
        assert_eq!(dt.ingress_bytes, 1000 * (1 + 3 + 5));
        assert_eq!(fb.ingress_bytes, 1000 * (2 + 4 + 6));
        // Forensics: cell c carries c % 3 rows → dt cells 0,2,4 give
        // 0+2+1 = 3 drops (2 self, 1 cross), fb cells 1,3,5 give
        // 1+0+2 = 3 drops (2 self, 1 cross).
        assert_eq!((dt.self_burst, dt.cross_contention), (2, 1));
        assert_eq!((fb.self_burst, fb.cross_contention), (2, 1));
        assert_eq!(dt.fabric_transient + fb.fabric_transient, 0);

        let csv = policy_compare_csv(&lake).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("policy,cells,ingress_bytes"));
        assert!(lines[1].starts_with("dt,3,9000,"), "{csv}");
        assert!(lines[2].starts_with("fb,3,12000,"), "{csv}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forensics_csv_renders_codes_as_names() {
        let dir = temp_dir("fcsv");
        let (lake, _) = build(&dir, 6);
        let csv = forensics_csv(&lake).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("cell,ns,queue,flow,size,reason,cause,"));
        // build() gives cells 1,2,3,5 forensics: 1+2+0+2 = 5 rows.
        assert_eq!(lines.len(), 1 + 5);
        for line in &lines[1..] {
            assert!(
                line.contains(",dynamic-threshold-reject,"),
                "bad row: {line}"
            );
        }
        assert!(csv.contains(",self-burst,"));
        assert!(csv.contains(",cross-contention,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diurnal_series_is_deterministic_and_smooth() {
        let interval = Ns::from_millis(50);
        let a = synth_diurnal_series(7, 2, 500, interval);
        let b = synth_diurnal_series(7, 2, 500, interval);
        assert_eq!(a, b);
        let c = synth_diurnal_series(8, 2, 500, interval);
        assert_ne!(a, c);
        // Smoothness: the mean absolute bucket-to-bucket delta is far
        // below the mean level, which is what delta encoding compresses.
        let s = &a[0].in_bytes;
        let mean: u64 = s.iter().sum::<u64>() / s.len() as u64;
        let mean_delta: u64 =
            s.windows(2).map(|w| w[0].abs_diff(w[1])).sum::<u64>() / (s.len() as u64 - 1);
        assert!(
            mean_delta * 4 < mean,
            "mean {mean}, mean_delta {mean_delta}"
        );
        let _ = interval;
    }
}
