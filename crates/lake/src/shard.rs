//! Per-worker shard files and the cell row-group they carry.
//!
//! Fleet workers cannot write final segments directly — chunk layout
//! depends on global row order, and workers finish cells in a
//! nondeterministic order. Instead each worker streams every completed
//! cell into its own transient *shard*: a row-oriented append-only file
//! of [`CellRows`] records (`"MSC1"` framing, one record per cell).
//! Compaction (see [`crate::writer`]) then replays the records in cell
//! order, which is what makes the final segments byte-identical
//! regardless of worker count.

use crate::LakeError;
use millisampler::codec::{self, WireReader, WireWriter};
use millisampler::HostSeries;
use ms_analysis::{BurstRow, RunOutcome};
use ms_telemetry::{DropCause, DropForensic, DropReason};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Shard record magic.
pub const CELL_MAGIC: &[u8; 4] = b"MSC1";

/// Everything one cell contributes to the lake: an outcomes row (or a
/// failure row, or neither for series-only exports), its classified
/// bursts, and its raw millisampler series.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRows {
    /// Sweep-global cell index; compaction orders the lake by it.
    pub cell: u64,
    /// Grid label (or a free-form name for exports).
    pub label: String,
    /// `Some(Ok(_))` → an ok outcomes row; `Some(Err(msg))` → a failed
    /// outcomes row carrying the panic message; `None` → no outcomes row
    /// (host-history exports feed only the series table).
    pub outcome: Option<Result<RunOutcome, String>>,
    /// Classified bursts (the lake's `bursts` table rows).
    pub bursts: Vec<BurstRow>,
    /// Raw per-host series (exploded into the `series` table).
    pub series: Vec<HostSeries>,
    /// Classified drop forensics (the lake's `forensics` table rows).
    pub forensics: Vec<DropForensic>,
}

impl CellRows {
    /// A failure record for a cell that panicked.
    pub fn failed(cell: u64, label: &str, message: String) -> Self {
        CellRows {
            cell,
            label: label.to_string(),
            outcome: Some(Err(message)),
            bursts: Vec::new(),
            series: Vec::new(),
            forensics: Vec::new(),
        }
    }

    /// Canonical codec encoding (identical records encode to identical
    /// bytes, so shard contents are deterministic per cell), with a
    /// trailing FNV-1a checksum so any single-byte corruption of a
    /// shard record is an error rather than a different record.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_magic(CELL_MAGIC);
        w.u64(self.cell);
        w.str(&self.label);
        match &self.outcome {
            None => w.u64(0),
            Some(Ok(o)) => {
                w.u64(1);
                w.bytes(&o.encode());
            }
            Some(Err(msg)) => {
                w.u64(2);
                w.str(msg);
            }
        }
        w.u64(self.bursts.len() as u64);
        for b in &self.bursts {
            w.u64(u64::from(b.server));
            w.u64(u64::from(b.start));
            w.u64(u64::from(b.len));
            w.u64(b.bytes);
            w.f64(b.avg_conns);
            w.u64(u64::from(b.max_contention));
            w.bool(b.contended);
            w.bool(b.lossy);
            w.u64(b.retx_bytes);
        }
        w.u64(self.series.len() as u64);
        for s in &self.series {
            w.bytes(&codec::encode(s));
        }
        w.u64(self.forensics.len() as u64);
        for f in &self.forensics {
            w.u64(f.ns);
            w.u64(u64::from(f.queue));
            w.u64(f.flow);
            w.u64(u64::from(f.size));
            w.u64(u64::from(f.reason.code()));
            w.u64(u64::from(f.cause.code()));
            w.u64(f.queue_occupancy);
            w.u64(f.shared_occupancy);
            w.u64(f.dt_threshold);
            w.u64(u64::from(f.burst_len));
            w.u64(u64::from(f.competing_flows));
            w.u64(f.self_bytes);
            w.u64(f.other_bytes);
            w.bool(f.ecn_on);
            w.u64(f.recent_kinds);
        }
        let mut buf = w.finish();
        let sum = codec::fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes a record produced by [`CellRows::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, LakeError> {
        let body_len = data
            .len()
            .checked_sub(8)
            .ok_or(LakeError::Corrupt("cell record shorter than checksum"))?;
        let stored = u64::from_le_bytes(
            data[body_len..]
                .try_into()
                .map_err(|_| LakeError::Corrupt("cell record checksum slice"))?,
        );
        let body = &data[..body_len];
        if codec::fnv1a64(body) != stored {
            return Err(LakeError::Corrupt("cell record checksum mismatch"));
        }
        let mut r = WireReader::new(body);
        r.expect_magic(CELL_MAGIC)?;
        let cell = r.u64()?;
        let label = r.string()?;
        let outcome = match r.u64()? {
            0 => None,
            1 => Some(Ok(RunOutcome::decode(&r.bytes()?)?)),
            2 => Some(Err(r.string()?)),
            _ => return Err(LakeError::Corrupt("bad outcome tag in cell record")),
        };
        let n_bursts = r.u64()?;
        if n_bursts as usize > data.len() {
            return Err(LakeError::Corrupt("burst count exceeds record"));
        }
        let mut bursts = Vec::with_capacity(n_bursts as usize);
        for _ in 0..n_bursts {
            bursts.push(BurstRow {
                // simlint: allow(cast-truncation): encoded from u32 fields
                cell: cell as u32,
                // simlint: allow(cast-truncation): encoded from u32 fields
                server: r.u64()? as u32,
                // simlint: allow(cast-truncation): encoded from u32 fields
                start: r.u64()? as u32,
                // simlint: allow(cast-truncation): encoded from u32 fields
                len: r.u64()? as u32,
                bytes: r.u64()?,
                avg_conns: r.f64()?,
                // simlint: allow(cast-truncation): encoded from u32 fields
                max_contention: r.u64()? as u32,
                contended: r.bool()?,
                lossy: r.bool()?,
                retx_bytes: r.u64()?,
            });
        }
        let n_series = r.u64()?;
        if n_series as usize > data.len() {
            return Err(LakeError::Corrupt("series count exceeds record"));
        }
        let mut series = Vec::with_capacity(n_series as usize);
        for _ in 0..n_series {
            series.push(codec::decode(&r.bytes()?)?);
        }
        let n_forensics = r.u64()?;
        if n_forensics as usize > data.len() {
            return Err(LakeError::Corrupt("forensic count exceeds record"));
        }
        let mut forensics = Vec::with_capacity(n_forensics as usize);
        for _ in 0..n_forensics {
            let ns = r.u64()?;
            // simlint: allow(cast-truncation): encoded from u32 fields
            let queue = r.u64()? as u32;
            let flow = r.u64()?;
            // simlint: allow(cast-truncation): encoded from u32 fields
            let size = r.u64()? as u32;
            let reason = reason_from(r.u64()?)?;
            let cause = cause_from(r.u64()?)?;
            forensics.push(DropForensic {
                ns,
                queue,
                flow,
                size,
                reason,
                cause,
                queue_occupancy: r.u64()?,
                shared_occupancy: r.u64()?,
                dt_threshold: r.u64()?,
                // simlint: allow(cast-truncation): encoded from u32 fields
                burst_len: r.u64()? as u32,
                // simlint: allow(cast-truncation): encoded from u32 fields
                competing_flows: r.u64()? as u32,
                self_bytes: r.u64()?,
                other_bytes: r.u64()?,
                ecn_on: r.bool()?,
                recent_kinds: r.u64()?,
            });
        }
        if r.remaining() != 0 {
            return Err(LakeError::Corrupt("trailing bytes in cell record"));
        }
        Ok(CellRows {
            cell,
            label,
            outcome,
            bursts,
            series,
            forensics,
        })
    }
}

fn reason_from(code: u64) -> Result<DropReason, LakeError> {
    DropReason::ALL
        .iter()
        .copied()
        .find(|r| u64::from(r.code()) == code)
        .ok_or(LakeError::Corrupt("bad drop reason in cell record"))
}

fn cause_from(code: u64) -> Result<DropCause, LakeError> {
    u8::try_from(code)
        .ok()
        .and_then(DropCause::from_code)
        .ok_or(LakeError::Corrupt("bad drop cause in cell record"))
}

/// Append-only writer for one worker's shard file. Records are framed
/// as `[len u64 LE][record bytes]` so compaction can index them with
/// one sequential pass.
#[derive(Debug)]
pub struct ShardWriter {
    out: BufWriter<std::fs::File>,
    path: PathBuf,
    records: u64,
}

impl ShardWriter {
    /// Creates (truncating) the shard file at `path`.
    pub fn create(path: &Path) -> Result<Self, LakeError> {
        let file = std::fs::File::create(path)?;
        Ok(ShardWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Appends one cell's rows.
    pub fn append(&mut self, rows: &CellRows) -> Result<(), LakeError> {
        let record = rows.encode();
        self.out.write_all(&(record.len() as u64).to_le_bytes())?;
        self.out.write_all(&record)?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The shard's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes and closes the shard.
    pub fn finish(mut self) -> Result<(), LakeError> {
        self.out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_dcsim::Ns;

    fn sample_rows() -> CellRows {
        let mut o = RunOutcome::empty();
        o.bursts = 2;
        o.contention_avg = 1.25;
        let mut s = HostSeries::zeroed(3, Ns::from_millis(5), Ns::from_millis(1), 4);
        s.in_bytes = vec![10, 20, 30, 40];
        CellRows {
            cell: 7,
            label: String::from("s1-a0.50-single-dctcp"),
            outcome: Some(Ok(o)),
            bursts: vec![BurstRow {
                cell: 7,
                server: 3,
                start: 1,
                len: 2,
                bytes: 999,
                avg_conns: 4.5,
                max_contention: 2,
                contended: true,
                lossy: false,
                retx_bytes: 0,
            }],
            series: vec![s],
            forensics: vec![DropForensic {
                ns: 31_000_123,
                queue: 3,
                flow: 42,
                size: 1500,
                reason: DropReason::DynamicThresholdReject,
                cause: DropCause::CrossContention,
                queue_occupancy: 1_800_000,
                shared_occupancy: 3_400_000,
                dt_threshold: 1_790_000,
                burst_len: 9,
                competing_flows: 14,
                self_bytes: 30_000,
                other_bytes: 410_000,
                ecn_on: true,
                recent_kinds: 0x0101_0303_0404_0101,
            }],
        }
    }

    #[test]
    fn cell_record_round_trips() {
        let rows = sample_rows();
        let enc = rows.encode();
        assert_eq!(CellRows::decode(&enc).unwrap(), rows);
        assert_eq!(enc, CellRows::decode(&enc).unwrap().encode());
    }

    #[test]
    fn failed_and_series_only_variants_round_trip() {
        let failed = CellRows::failed(2, "s9-x", String::from("boom\nline2"));
        assert_eq!(CellRows::decode(&failed.encode()).unwrap(), failed);
        let bare = CellRows {
            cell: 0,
            label: String::from("host-store"),
            outcome: None,
            bursts: Vec::new(),
            series: Vec::new(),
            forensics: Vec::new(),
        };
        assert_eq!(CellRows::decode(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CellRows::decode(b"NOPE").is_err());
        let mut enc = sample_rows().encode();
        enc.truncate(enc.len() / 2);
        assert!(CellRows::decode(&enc).is_err());
    }
}
