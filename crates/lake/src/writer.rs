//! Lake directory management: shard creation, deterministic grid-order
//! compaction, and the manifest.
//!
//! Compaction is the determinism pivot of the writer path. Workers
//! finish cells in a race-dependent order across a race-dependent set
//! of shards; compaction erases both: pass 1 indexes every shard record
//! by cell, pass 2 replays the records in ascending cell order through
//! one [`SegmentWriter`] per table, rolling segments at a fixed row
//! budget. Segment bytes therefore depend only on `(cell → rows)` — the
//! same lake, byte for byte, whether the sweep ran on 1 worker or 16.
//! Shards are deleted once compacted; the manifest lists the surviving
//! segments in a fixed table order.

use crate::segment::{SegmentWriter, TableKind};
use crate::shard::{CellRows, ShardWriter};
use crate::LakeError;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Writer knobs.
#[derive(Debug, Clone, Copy)]
pub struct LakeConfig {
    /// Rows per chunk (the query engine's resident-row bound).
    pub chunk_rows: usize,
    /// Rows per segment file before rolling to the next one.
    pub segment_rows: u64,
}

impl Default for LakeConfig {
    fn default() -> Self {
        LakeConfig {
            chunk_rows: 4096,
            segment_rows: 262_144,
        }
    }
}

/// One manifest line: a segment file and its row/byte counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Table the segment belongs to.
    pub table: TableKind,
    /// File name inside the lake directory.
    pub file: String,
    /// Rows in the segment.
    pub rows: u64,
    /// Segment size in bytes.
    pub bytes: u64,
}

/// The lake's table of contents (`MANIFEST.txt`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LakeManifest {
    /// Segments in fixed order: outcomes, then bursts, then series,
    /// then forensics.
    pub entries: Vec<ManifestEntry>,
}

impl LakeManifest {
    /// Total rows of one table.
    pub fn rows(&self, table: TableKind) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.table == table)
            .map(|e| e.rows)
            .sum()
    }

    /// Total segment bytes of one table.
    pub fn bytes(&self, table: TableKind) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.table == table)
            .map(|e| e.bytes)
            .sum()
    }

    /// Deterministic CSV rendering.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("table,file,rows,bytes\n");
        for e in &self.entries {
            let _ = writeln!(out, "{},{},{},{}", e.table.name(), e.file, e.rows, e.bytes);
        }
        out
    }

    /// Parses [`LakeManifest::to_csv`] output.
    pub fn parse(text: &str) -> Result<Self, LakeError> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 {
                if line != "table,file,rows,bytes" {
                    return Err(LakeError::Corrupt("bad manifest header"));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let table = parts
                .next()
                .and_then(TableKind::parse)
                .ok_or(LakeError::Corrupt("bad manifest table"))?;
            let file = parts
                .next()
                .ok_or(LakeError::Corrupt("bad manifest file"))?
                .to_string();
            let rows = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(LakeError::Corrupt("bad manifest rows"))?;
            let bytes = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(LakeError::Corrupt("bad manifest bytes"))?;
            entries.push(ManifestEntry {
                table,
                file,
                rows,
                bytes,
            });
        }
        Ok(LakeManifest { entries })
    }
}

/// Coordinates shard creation and compaction for one lake directory.
#[derive(Debug)]
pub struct LakeWriter {
    dir: PathBuf,
    cfg: LakeConfig,
}

impl LakeWriter {
    /// Creates the lake directory (and parents) if needed.
    pub fn create(dir: &Path, cfg: LakeConfig) -> Result<Self, LakeError> {
        std::fs::create_dir_all(dir)?;
        Ok(LakeWriter {
            dir: dir.to_path_buf(),
            cfg,
        })
    }

    /// The lake directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The writer's configuration.
    pub fn config(&self) -> LakeConfig {
        self.cfg
    }

    /// A shard writer for worker `worker` (`shard-w0003.mss`).
    pub fn shard_writer(&self, worker: usize) -> Result<ShardWriter, LakeError> {
        self.shard_writer_named(&format!("w{worker:04}"))
    }

    /// A shard writer with an explicit name (`shard-<name>.mss`) — used
    /// by non-fleet producers like `HostStore` exports so their shards
    /// cannot collide with worker shards.
    pub fn shard_writer_named(&self, name: &str) -> Result<ShardWriter, LakeError> {
        ShardWriter::create(&self.dir.join(format!("shard-{name}.mss")))
    }

    /// Merges every shard in the directory into final segments in
    /// ascending cell order, writes `MANIFEST.txt`, and deletes the
    /// shards. Duplicate cell indices across shards are an error.
    pub fn compact(&self) -> Result<LakeManifest, LakeError> {
        let mut shard_paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "mss")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        shard_paths.sort();

        // Pass 1: index every record by cell without decoding payloads.
        let mut index: Vec<(u64, usize, u64, u64)> = Vec::new(); // (cell, shard, offset, len)
        let mut shards = Vec::with_capacity(shard_paths.len());
        for (si, path) in shard_paths.iter().enumerate() {
            let mut file = std::fs::File::open(path)?;
            let file_len = file.seek(SeekFrom::End(0))?;
            file.seek(SeekFrom::Start(0))?;
            let mut pos = 0u64;
            let mut len_buf = [0u8; 8];
            let mut head = [0u8; 14]; // magic + max varint cell id
            while pos < file_len {
                file.read_exact(&mut len_buf)?;
                let len = u64::from_le_bytes(len_buf);
                let body = pos + 8;
                if body + len > file_len {
                    return Err(LakeError::Corrupt("shard record overruns file"));
                }
                let head_len = (len as usize).min(head.len());
                file.read_exact(&mut head[..head_len])?;
                let cell = peek_cell(&head[..head_len])?;
                index.push((cell, si, body, len));
                pos = body + len;
                file.seek(SeekFrom::Start(pos))?;
            }
            shards.push(file);
        }
        index.sort_unstable_by_key(|&(cell, ..)| cell);
        for pair in index.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(LakeError::Invalid(format!(
                    "duplicate cell {} across shards",
                    pair[0].0
                )));
            }
        }

        // Pass 2: replay records in cell order through the table builders.
        let mut outcomes = TableBuilder::new(TableKind::Outcomes, &self.dir, self.cfg)?;
        let mut bursts = TableBuilder::new(TableKind::Bursts, &self.dir, self.cfg)?;
        let mut series = TableBuilder::new(TableKind::Series, &self.dir, self.cfg)?;
        let mut forensics = TableBuilder::new(TableKind::Forensics, &self.dir, self.cfg)?;
        let mut record = Vec::new();
        for &(cell, si, offset, len) in &index {
            let file = &mut shards[si];
            file.seek(SeekFrom::Start(offset))?;
            record.resize(len as usize, 0);
            file.read_exact(&mut record)?;
            let rows = CellRows::decode(&record)?;
            if rows.cell != cell {
                return Err(LakeError::Corrupt("cell id disagrees with shard index"));
            }
            append_cell(
                &mut outcomes,
                &mut bursts,
                &mut series,
                &mut forensics,
                &rows,
            )?;
        }

        let mut manifest = LakeManifest::default();
        outcomes.finish(&mut manifest)?;
        bursts.finish(&mut manifest)?;
        series.finish(&mut manifest)?;
        forensics.finish(&mut manifest)?;
        std::fs::write(self.dir.join("MANIFEST.txt"), manifest.to_csv())?;
        for path in &shard_paths {
            std::fs::remove_file(path)?;
        }
        Ok(manifest)
    }
}

/// Reads the cell id out of a record prefix (magic + first varint).
fn peek_cell(head: &[u8]) -> Result<u64, LakeError> {
    if head.len() < 5 || &head[..4] != crate::shard::CELL_MAGIC {
        return Err(LakeError::Corrupt("bad shard record magic"));
    }
    let mut pos = 4usize;
    crate::segment::read_varint(head, &mut pos)
}

/// Explodes one cell's rows into the four tables.
fn append_cell(
    outcomes: &mut TableBuilder,
    bursts: &mut TableBuilder,
    series: &mut TableBuilder,
    forensics: &mut TableBuilder,
    rows: &CellRows,
) -> Result<(), LakeError> {
    match &rows.outcome {
        None => {}
        Some(result) => {
            outcomes.roll_if_full()?;
            let label_id = outcomes.writer.dict_id(&rows.label);
            let (status, error, o) = match result {
                Ok(o) => (0u64, String::new(), o.clone()),
                Err(msg) => (1u64, msg.clone(), ms_analysis::RunOutcome::empty()),
            };
            let error_id = outcomes.writer.dict_id(&error);
            outcomes.writer.push_row(&[
                rows.cell,
                status,
                label_id,
                error_id,
                o.switch_ingress_bytes,
                o.switch_discard_bytes,
                o.flows_started,
                o.conns_completed,
                o.events,
                o.total_in_bytes,
                o.total_retx_bytes,
                o.bursts,
                o.contended_bursts,
                o.lossy_bursts,
                o.contention_avg.to_bits(),
                u64::from(o.contention_p90),
                u64::from(o.contention_max),
                u64::from(o.active_servers),
                u64::from(o.bursty_servers),
                o.policy.code(),
            ])?;
        }
    }
    for b in &rows.bursts {
        bursts.roll_if_full()?;
        bursts.writer.push_row(&[
            rows.cell,
            u64::from(b.server),
            u64::from(b.start),
            u64::from(b.len),
            b.bytes,
            b.avg_conns.to_bits(),
            u64::from(b.max_contention),
            u64::from(b.contended),
            u64::from(b.lossy),
            b.retx_bytes,
        ])?;
    }
    for s in &rows.series {
        let n = s.len();
        for bucket in 0..n {
            series.roll_if_full()?;
            series.writer.push_row(&[
                rows.cell,
                u64::from(s.host),
                s.start.as_nanos(),
                s.interval.as_nanos(),
                bucket as u64,
                s.in_bytes[bucket],
                s.in_retx[bucket],
                s.out_bytes[bucket],
                s.out_retx[bucket],
                s.in_ecn[bucket],
                s.conns[bucket],
            ])?;
        }
    }
    for f in &rows.forensics {
        forensics.roll_if_full()?;
        forensics.writer.push_row(&[
            rows.cell,
            f.ns,
            u64::from(f.queue),
            f.flow,
            u64::from(f.size),
            u64::from(f.reason.code()),
            u64::from(f.cause.code()),
            f.queue_occupancy,
            f.shared_occupancy,
            f.dt_threshold,
            u64::from(f.burst_len),
            u64::from(f.competing_flows),
            f.self_bytes,
            f.other_bytes,
            u64::from(f.ecn_on),
            f.recent_kinds,
        ])?;
    }
    Ok(())
}

/// One table's rolling segment writer during compaction.
struct TableBuilder {
    kind: TableKind,
    dir: PathBuf,
    cfg: LakeConfig,
    writer: SegmentWriter,
    seq: usize,
    written: Vec<ManifestEntry>,
}

impl TableBuilder {
    fn new(kind: TableKind, dir: &Path, cfg: LakeConfig) -> Result<Self, LakeError> {
        Ok(TableBuilder {
            kind,
            dir: dir.to_path_buf(),
            cfg,
            writer: SegmentWriter::new(kind, cfg.chunk_rows),
            seq: 0,
            written: Vec::new(),
        })
    }

    /// Rolls to a fresh segment when the current one is at its row
    /// budget. Called *before* interning dictionary strings so ids land
    /// in the segment the row goes to.
    fn roll_if_full(&mut self) -> Result<(), LakeError> {
        if self.writer.total_rows() >= self.cfg.segment_rows {
            self.roll()?;
        }
        Ok(())
    }

    fn roll(&mut self) -> Result<(), LakeError> {
        let writer = std::mem::replace(
            &mut self.writer,
            SegmentWriter::new(self.kind, self.cfg.chunk_rows),
        );
        let rows = writer.total_rows();
        let bytes = writer.finish();
        let file = format!("{}-{:04}.msl", self.kind.name(), self.seq);
        std::fs::write(self.dir.join(&file), &bytes)?;
        self.written.push(ManifestEntry {
            table: self.kind,
            file,
            rows,
            bytes: bytes.len() as u64,
        });
        self.seq += 1;
        Ok(())
    }

    /// Flushes the final (possibly empty) segment and appends this
    /// table's entries to the manifest.
    fn finish(mut self, manifest: &mut LakeManifest) -> Result<(), LakeError> {
        if self.writer.total_rows() > 0 || self.written.is_empty() {
            self.roll()?;
        }
        manifest.entries.append(&mut self.written);
        Ok(())
    }
}

/// A compacted lake opened for querying.
#[derive(Debug)]
pub struct Lake {
    /// Lake directory.
    pub dir: PathBuf,
    /// Parsed manifest.
    pub manifest: LakeManifest,
}

impl Lake {
    /// Opens a lake directory by reading its manifest.
    pub fn open(dir: &Path) -> Result<Self, LakeError> {
        let text = std::fs::read_to_string(dir.join("MANIFEST.txt"))?;
        Ok(Lake {
            dir: dir.to_path_buf(),
            manifest: LakeManifest::parse(&text)?,
        })
    }

    /// Segment paths of one table, in manifest (cell) order.
    pub fn segments(&self, table: TableKind) -> Vec<PathBuf> {
        self.manifest
            .entries
            .iter()
            .filter(|e| e.table == table)
            .map(|e| self.dir.join(&e.file))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::verify_segment_bytes;
    use millisampler::HostSeries;
    use ms_analysis::RunOutcome;
    use ms_dcsim::Ns;

    fn cell(cell: u64, buckets: usize) -> CellRows {
        let mut o = RunOutcome::empty();
        o.bursts = cell;
        o.contention_avg = cell as f64 * 0.5;
        let mut s = HostSeries::zeroed(0, Ns::from_millis(cell), Ns::from_millis(1), buckets);
        for (i, v) in s.in_bytes.iter_mut().enumerate() {
            *v = cell * 1000 + i as u64;
        }
        CellRows {
            cell,
            label: format!("cell-{cell}"),
            outcome: Some(Ok(o)),
            bursts: Vec::new(),
            series: vec![s],
            forensics: vec![ms_telemetry::DropForensic {
                ns: cell * 1_000_000,
                queue: 1,
                flow: cell,
                size: 1500,
                reason: ms_telemetry::DropReason::DynamicThresholdReject,
                cause: ms_telemetry::DropCause::SelfBurst,
                queue_occupancy: cell * 100,
                shared_occupancy: cell * 200,
                dt_threshold: 90,
                burst_len: 3,
                competing_flows: 1,
                self_bytes: 4500,
                other_bytes: 0,
                ecn_on: false,
                recent_kinds: 0x0303,
            }],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        // simlint: allow(env-read): tests write scratch lakes
        let dir = std::env::temp_dir().join(format!("ms-lake-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn compaction_is_shard_assignment_invariant() {
        let build = |name: &str, split: &[&[u64]]| {
            let dir = temp_dir(name);
            let w = LakeWriter::create(
                &dir,
                LakeConfig {
                    chunk_rows: 4,
                    segment_rows: 10,
                },
            )
            .unwrap();
            for (wi, cells) in split.iter().enumerate() {
                let mut shard = w.shard_writer(wi).unwrap();
                for &c in *cells {
                    shard.append(&cell(c, 6)).unwrap();
                }
                shard.finish().unwrap();
            }
            let manifest = w.compact().unwrap();
            let files: Vec<Vec<u8>> = manifest
                .entries
                .iter()
                .map(|e| std::fs::read(dir.join(&e.file)).unwrap())
                .collect();
            let _ = std::fs::remove_dir_all(&dir);
            (manifest, files)
        };
        // Same cells, different shard assignment and different order.
        let (m1, f1) = build("a", &[&[0, 1, 2, 3]]);
        let (m2, f2) = build("b", &[&[3, 1], &[2], &[0]]);
        assert_eq!(m1, m2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn compaction_rolls_segments_and_cleans_shards() {
        let dir = temp_dir("roll");
        let w = LakeWriter::create(
            &dir,
            LakeConfig {
                chunk_rows: 4,
                segment_rows: 10,
            },
        )
        .unwrap();
        let mut shard = w.shard_writer(0).unwrap();
        for c in 0..5 {
            shard.append(&cell(c, 8)).unwrap(); // 40 series rows total
        }
        shard.finish().unwrap();
        let manifest = w.compact().unwrap();
        assert_eq!(manifest.rows(TableKind::Outcomes), 5);
        assert_eq!(manifest.rows(TableKind::Series), 40);
        assert_eq!(manifest.rows(TableKind::Forensics), 5);
        // 40 series rows at 10 rows/segment = 4 segment files.
        assert_eq!(
            manifest
                .entries
                .iter()
                .filter(|e| e.table == TableKind::Series)
                .count(),
            4
        );
        for e in &manifest.entries {
            let bytes = std::fs::read(dir.join(&e.file)).unwrap();
            assert_eq!(verify_segment_bytes(&bytes).unwrap(), e.rows);
        }
        // Shards are gone; manifest parses back identically.
        assert!(!std::fs::read_dir(&dir)
            .unwrap()
            .any(|e| { e.unwrap().path().extension().is_some_and(|x| x == "mss") }));
        let reopened = Lake::open(&dir).unwrap();
        assert_eq!(reopened.manifest, manifest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let dir = temp_dir("dup");
        let w = LakeWriter::create(&dir, LakeConfig::default()).unwrap();
        for wi in 0..2 {
            let mut shard = w.shard_writer(wi).unwrap();
            shard.append(&cell(1, 2)).unwrap();
            shard.finish().unwrap();
        }
        assert!(matches!(w.compact(), Err(LakeError::Invalid(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_lake_compacts_to_empty_segments() {
        let dir = temp_dir("empty");
        let w = LakeWriter::create(&dir, LakeConfig::default()).unwrap();
        let manifest = w.compact().unwrap();
        assert_eq!(manifest.entries.len(), 4);
        assert_eq!(manifest.rows(TableKind::Outcomes), 0);
        assert_eq!(manifest.rows(TableKind::Forensics), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
