//! Draining a `HostStore` retention window into a lake.
//!
//! The on-host ring buffer (`millisampler::HostStore`) holds a bounded
//! window of recent runs; fleet-wide studies need them persisted before
//! retention evicts them. [`HostStoreExt::export_to_lake`] is that
//! drain: every retained run becomes `series` rows of one lake cell
//! (no outcomes row — these are raw samples, not sweep results), via a
//! named shard so host exports can never collide with fleet workers.

use crate::shard::CellRows;
use crate::writer::LakeWriter;
use crate::LakeError;
use millisampler::HostStore;
use ms_dcsim::Ns;

/// Lake export for the on-host sample store.
pub trait HostStoreExt {
    /// Writes every retained run into `writer` as the series rows of
    /// cell `cell` (shard `shard-host-<cell>.mss`; compaction folds it
    /// into the lake). Returns the number of series rows exported.
    fn export_to_lake(&self, writer: &LakeWriter, cell: u64, label: &str)
        -> Result<u64, LakeError>;
}

impl HostStoreExt for HostStore {
    fn export_to_lake(
        &self,
        writer: &LakeWriter,
        cell: u64,
        label: &str,
    ) -> Result<u64, LakeError> {
        let series = self.fetch_range(Ns::ZERO, Ns::MAX)?;
        let rows = series.iter().map(|s| s.len() as u64).sum();
        let mut shard = writer.shard_writer_named(&format!("host-{cell:08}"))?;
        shard.append(&CellRows {
            cell,
            label: label.to_string(),
            outcome: None,
            bursts: Vec::new(),
            series,
            forensics: Vec::new(),
        })?;
        shard.finish()?;
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Batch, Operator, TableScan};
    use crate::segment::TableKind;
    use crate::writer::{Lake, LakeConfig};
    use millisampler::store::StoreConfig;
    use millisampler::{HostSeries, HostStore};

    #[test]
    fn retained_runs_land_in_the_series_table() {
        // simlint: allow(env-read): tests write scratch lakes
        let dir = std::env::temp_dir().join(format!("ms-lake-host-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let store = HostStore::new(StoreConfig::default());
        for run in 0..3u64 {
            let mut s = HostSeries::zeroed(5, Ns::from_secs(run), Ns::from_millis(1), 4);
            for (i, v) in s.in_bytes.iter_mut().enumerate() {
                *v = run * 100 + i as u64;
            }
            store.append(&s);
        }

        let writer = LakeWriter::create(&dir, LakeConfig::default()).unwrap();
        let rows = store.export_to_lake(&writer, 42, "host-5-drain").unwrap();
        assert_eq!(rows, 12);
        writer.compact().unwrap();

        let lake = Lake::open(&dir).unwrap();
        assert_eq!(lake.manifest.rows(TableKind::Series), 12);
        assert_eq!(lake.manifest.rows(TableKind::Outcomes), 0);
        let cell_col = TableKind::Series.column("cell").unwrap();
        let host_col = TableKind::Series.column("host").unwrap();
        let mut scan =
            TableScan::new(&lake, TableKind::Series, &[cell_col, host_col], Vec::new()).unwrap();
        let mut batch = Batch::new();
        let mut seen = 0;
        while scan.next_batch(&mut batch).unwrap() {
            for row in 0..batch.rows {
                assert_eq!(batch.value(0, row), 42);
                assert_eq!(batch.value(1, row), 5);
                seen += 1;
            }
        }
        assert_eq!(seen, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
