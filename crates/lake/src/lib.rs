//! ms-lake: a columnar on-disk sample lake for fleet-scale sweeps.
//!
//! The in-memory `FleetReport` path holds every cell's outcome, bursts,
//! and raw millisampler series until the sweep finishes — fine for a
//! hundred cells, hopeless for the fleet-scale parameter studies the
//! paper's §6 methodology implies. ms-lake replaces that buffering with
//! an append-only columnar lake:
//!
//! - [`segment`] — the `MSL1` segment format: delta+zigzag+varint
//!   columns (the same primitives as `millisampler::codec`), chunked
//!   with per-chunk min/max/count footers for predicate pushdown, and
//!   FNV-1a checksums over every byte so corruption is an `Err`, never
//!   a panic.
//! - [`shard`] — per-worker append-only shard files of [`CellRows`]
//!   records; workers stream cells out as they finish.
//! - [`writer`] — [`LakeWriter`]: shard creation plus deterministic
//!   grid-order compaction into final segments. Identical `(spec, seed)`
//!   sweeps produce byte-identical lakes regardless of worker count.
//! - [`query`] — pull-based streaming operators ([`TableScan`],
//!   [`RowFilter`]) that hold at most one chunk per open column, so
//!   queries run over lakes larger than memory.
//! - [`analyses`] — the paper's aggregations (contention bimodality,
//!   burst-size CDFs, loss-vs-contention) recomputed out-of-core,
//!   bit-for-bit equal to the in-memory `ms_analysis` fold.
//! - [`host_ext`] — draining a `HostStore` retention window into a lake.
//!
//! Determinism contract: segment bytes are a pure function of the
//! compacted cell set and [`LakeConfig`]; no timestamps, no randomness,
//! no map-iteration order anywhere in the write path.

pub mod analyses;
pub mod host_ext;
pub mod query;
pub mod segment;
pub mod shard;
pub mod writer;

pub use analyses::{
    attribution_csv, forensics_csv, lake_loss_attribution, lake_policy_compare,
    lake_sweep_aggregate, lake_tier_drops, outcomes_csv, policy_compare_csv, synth_diurnal_series,
    tiers_csv, CellAttribution, CellTierDrops, PolicyCompare,
};
pub use host_ext::HostStoreExt;
pub use query::{for_each_row, Batch, ColumnRange, Operator, RowFilter, ScanStats, TableScan};
pub use segment::{
    verify_segment_bytes, ColumnReader, ColumnWriter, SegmentReader, SegmentWriter, TableKind,
};
pub use shard::{CellRows, ShardWriter};
pub use writer::{Lake, LakeConfig, LakeManifest, LakeWriter, ManifestEntry};

use millisampler::codec::DecodeError;

/// Everything that can go wrong reading or writing a lake.
#[derive(Debug)]
pub enum LakeError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A codec-level decode failure (bad varint, checksum mismatch, …).
    Decode(DecodeError),
    /// Structural corruption with a static description.
    Corrupt(&'static str),
    /// Caller error: bad arguments, duplicate cells, unknown tables.
    Invalid(String),
}

impl std::fmt::Display for LakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakeError::Io(e) => write!(f, "lake io error: {e}"),
            LakeError::Decode(e) => write!(f, "lake decode error: {e:?}"),
            LakeError::Corrupt(msg) => write!(f, "lake corrupt: {msg}"),
            LakeError::Invalid(msg) => write!(f, "lake invalid: {msg}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> Self {
        LakeError::Io(e)
    }
}

impl From<DecodeError> for LakeError {
    fn from(e: DecodeError) -> Self {
        LakeError::Decode(e)
    }
}
