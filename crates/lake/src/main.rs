//! `lake` — build, inspect, and query on-disk sample lakes.
//!
//! ```text
//! lake synth   --dir DIR [--seed N] [--hosts N] [--buckets N]
//!              [--interval-ms N] [--chunk-rows N] [--segment-rows N]
//! lake compact --dir DIR [--chunk-rows N] [--segment-rows N]
//! lake query   --dir DIR [--report aggregate|outcomes|forensics|attribution|tiers|policy-compare]
//!              [--out PATH]
//! lake stat    --dir DIR
//! lake bench   --dir DIR [--seed N] [--hosts N] [--json PATH]
//! ```
//!
//! `synth` writes a deterministic diurnal corpus (for testing the
//! format at scale), `compact` folds leftover shards into segments,
//! `query` streams the paper's aggregations out-of-core, `stat`
//! verifies every chunk checksum, and `bench` writes the
//! `BENCH_lake.json` compression/scan-rate artifact the CI gate checks.
//! Timing and process-environment reads live only in this binary; the
//! library stays deterministic (simlint enforces the split).

use ms_lake::segment::verify_segment_bytes;
use ms_lake::{
    lake_sweep_aggregate, outcomes_csv, synth_diurnal_series, Lake, LakeConfig, LakeWriter,
    TableKind,
};
use ms_lake::{CellRows, LakeError};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let cmd = args[0].as_str();
    let result = match cmd {
        "synth" => cmd_synth(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "stat" => cmd_stat(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(msg) = result {
        eprintln!("lake: {msg}");
        eprintln!("lake: try --help");
        std::process::exit(2);
    }
}

/// Flags shared by every subcommand.
struct Opts {
    dir: PathBuf,
    seed: u64,
    hosts: u32,
    buckets: usize,
    /// Bucket width, validated against the nanosecond clock at parse
    /// time (`--interval-ms`).
    interval: ms_dcsim::Ns,
    chunk_rows: usize,
    segment_rows: u64,
    report: String,
    out: Option<String>,
    json: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        dir: PathBuf::new(),
        seed: 1,
        hosts: 8,
        buckets: 86_400,
        interval: ms_dcsim::Ns::from_millis(1000),
        chunk_rows: LakeConfig::default().chunk_rows,
        segment_rows: LakeConfig::default().segment_rows,
        report: String::from("aggregate"),
        out: None,
        json: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => o.dir = PathBuf::from(value("--dir")?),
            "--seed" => o.seed = parse_num(value("--seed")?, "--seed")?,
            "--hosts" => o.hosts = parse_num(value("--hosts")?, "--hosts")?,
            "--buckets" => o.buckets = parse_num(value("--buckets")?, "--buckets")?,
            "--interval-ms" => {
                let ms: u64 = parse_num(value("--interval-ms")?, "--interval-ms")?;
                o.interval = ms_dcsim::Ns::checked_from_millis(ms)
                    .ok_or_else(|| format!("--interval-ms {ms} overflows the nanosecond clock"))?;
            }
            "--chunk-rows" => o.chunk_rows = parse_num(value("--chunk-rows")?, "--chunk-rows")?,
            "--segment-rows" => {
                o.segment_rows = parse_num(value("--segment-rows")?, "--segment-rows")?;
            }
            "--report" => o.report = value("--report")?.clone(),
            "--out" => o.out = Some(value("--out")?.clone()),
            "--json" => o.json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if o.dir.as_os_str().is_empty() {
        return Err(String::from("--dir is required"));
    }
    Ok(o)
}

fn lake_cfg(o: &Opts) -> LakeConfig {
    LakeConfig {
        chunk_rows: o.chunk_rows,
        segment_rows: o.segment_rows,
    }
}

/// Writes the synthetic diurnal corpus as one lake cell and compacts.
fn cmd_synth(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let manifest = synth_lake(&o).map_err(|e| e.to_string())?;
    print!("{}", manifest.to_csv());
    Ok(())
}

fn synth_lake(o: &Opts) -> Result<ms_lake::LakeManifest, LakeError> {
    let series = synth_diurnal_series(o.seed, o.hosts, o.buckets, o.interval);
    let writer = LakeWriter::create(&o.dir, lake_cfg(o))?;
    let mut shard = writer.shard_writer_named("synth")?;
    shard.append(&CellRows {
        cell: 0,
        label: format!("diurnal-s{}-h{}-b{}", o.seed, o.hosts, o.buckets),
        outcome: None,
        bursts: Vec::new(),
        series,
        forensics: Vec::new(),
    })?;
    shard.finish()?;
    writer.compact()
}

fn cmd_compact(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let writer = LakeWriter::create(&o.dir, lake_cfg(&o)).map_err(|e| e.to_string())?;
    let manifest = writer.compact().map_err(|e| e.to_string())?;
    print!("{}", manifest.to_csv());
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let lake = Lake::open(&o.dir).map_err(|e| e.to_string())?;
    let text = match o.report.as_str() {
        "aggregate" => lake_sweep_aggregate(&lake)
            .map_err(|e| e.to_string())?
            .to_csv(),
        "outcomes" => outcomes_csv(&lake).map_err(|e| e.to_string())?,
        "forensics" => ms_lake::forensics_csv(&lake).map_err(|e| e.to_string())?,
        "attribution" => ms_lake::attribution_csv(&lake).map_err(|e| e.to_string())?,
        "tiers" => ms_lake::tiers_csv(&lake).map_err(|e| e.to_string())?,
        "policy-compare" => ms_lake::policy_compare_csv(&lake).map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "--report: {other:?} is not aggregate/outcomes/forensics/attribution/tiers/policy-compare"
            ))
        }
    };
    match &o.out {
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Prints the manifest and fully verifies every segment (all checksums,
/// every value decoded, footer min/max cross-checked).
fn cmd_stat(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let lake = Lake::open(&o.dir).map_err(|e| e.to_string())?;
    print!("{}", lake.manifest.to_csv());
    for e in &lake.manifest.entries {
        let path = o.dir.join(&e.file);
        let bytes = std::fs::read(&path).map_err(|err| format!("{}: {err}", path.display()))?;
        let rows = verify_segment_bytes(&bytes).map_err(|err| format!("{}: {err}", e.file))?;
        if rows != e.rows {
            return Err(format!(
                "{}: manifest says {} rows, file has {rows}",
                e.file, e.rows
            ));
        }
        println!("verified,{},{rows}", e.file);
    }
    Ok(())
}

/// Builds the diurnal corpus, then measures compression (vs raw
/// column bytes and vs the row-oriented millisampler codec) and
/// out-of-core scan rate. Writes `BENCH_lake.json`.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let series = synth_diurnal_series(o.seed, o.hosts, o.buckets, o.interval);
    let rows: u64 = series.iter().map(|s| s.len() as u64).sum();
    let raw_bytes = rows * 8 * TableKind::Series.columns().len() as u64;
    let codec_bytes: u64 = series
        .iter()
        .map(|s| millisampler::codec::encode(s).len() as u64)
        .sum();

    let writer = LakeWriter::create(&o.dir, lake_cfg(&o)).map_err(|e| e.to_string())?;
    let mut shard = writer
        .shard_writer_named("bench")
        .map_err(|e| e.to_string())?;
    shard
        .append(&CellRows {
            cell: 0,
            label: String::from("bench-diurnal"),
            outcome: None,
            bursts: Vec::new(),
            series,
            forensics: Vec::new(),
        })
        .map_err(|e| e.to_string())?;
    shard.finish().map_err(|e| e.to_string())?;
    let manifest = writer.compact().map_err(|e| e.to_string())?;
    let lake_bytes = manifest.bytes(TableKind::Series);

    // Out-of-core scan: sum one column over every row, timed.
    let lake = Lake::open(&o.dir).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let in_col = TableKind::Series
        .column("in_bytes")
        .ok_or("missing in_bytes column")?;
    let mut scan = ms_lake::TableScan::new(&lake, TableKind::Series, &[in_col], Vec::new())
        .map_err(|e| e.to_string())?;
    let mut total_in = 0u64;
    let mut scanned = 0u64;
    ms_lake::for_each_row(&mut scan, |b, r| {
        total_in = total_in.wrapping_add(b.value(0, r));
        scanned += 1;
    })
    .map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    if scanned != rows {
        return Err(format!("scan returned {scanned} rows, expected {rows}"));
    }

    let compression_vs_raw = raw_bytes as f64 / lake_bytes.max(1) as f64;
    let compression_vs_codec = codec_bytes as f64 / lake_bytes.max(1) as f64;
    let rows_per_sec = rows as f64 / wall.as_secs_f64().max(1e-9);
    let host_cores = std::thread::available_parallelism().map_or(0, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"lake\",\n  \"hosts\": {},\n  \"buckets\": {},\n  \
         \"rows\": {rows},\n  \"raw_bytes\": {raw_bytes},\n  \
         \"millisampler_codec_bytes\": {codec_bytes},\n  \"lake_bytes\": {lake_bytes},\n  \
         \"compression_vs_raw\": {compression_vs_raw:.3},\n  \
         \"compression_vs_codec\": {compression_vs_codec:.3},\n  \
         \"scan_wall_ms\": {:.3},\n  \"scan_rows_per_sec\": {rows_per_sec:.1},\n  \
         \"checksum\": {total_in},\n  \"host_cores\": {host_cores}\n}}\n",
        o.hosts,
        o.buckets,
        wall.as_secs_f64() * 1e3,
    );
    match &o.json {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("[lake] bench artifact written to {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse::<T>()
        .map_err(|_| format!("{flag}: bad value {s:?}"))
}

fn print_help() {
    println!(
        "lake — columnar on-disk sample lake tools\n\
         \n\
         USAGE: lake <COMMAND> --dir DIR [OPTIONS]\n\
         \n\
         COMMANDS:\n\
         \x20 synth    write a deterministic diurnal corpus and compact it\n\
         \x20 compact  fold leftover shard files into final segments\n\
         \x20 query    stream an analysis out-of-core\n\
         \x20          (--report aggregate|outcomes|forensics|attribution|tiers|policy-compare)\n\
         \x20 stat     print the manifest and verify every segment checksum\n\
         \x20 bench    build the diurnal corpus, measure compression + scan rate\n\
         \n\
         OPTIONS:\n\
         \x20 --dir DIR           lake directory (required)\n\
         \x20 --seed N            synthesis seed                    [default 1]\n\
         \x20 --hosts N           synthetic hosts                   [default 8]\n\
         \x20 --buckets N         samples per host                  [default 86400]\n\
         \x20 --interval-ms N     sample interval in ms             [default 1000]\n\
         \x20 --chunk-rows N      rows per chunk                    [default 4096]\n\
         \x20 --segment-rows N    rows per segment file             [default 262144]\n\
         \x20 --report KIND       query report: aggregate|outcomes|forensics|\n\
         \x20                     attribution|tiers|policy-compare [default aggregate]\n\
         \x20 --out PATH          write query output to PATH (default: stdout)\n\
         \x20 --json PATH         write BENCH_lake.json to PATH (bench only)"
    );
}
