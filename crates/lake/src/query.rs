//! Pull-based streaming operators over a compacted lake.
//!
//! The operator model is deliberately small: an [`Operator`] yields
//! column-major [`Batch`]es of at most one chunk, pulled by the
//! consumer. [`TableScan`] is the leaf — it walks a table's segments in
//! manifest order, skips chunks whose footer `(min, max)` ranges prove
//! no row can match ([`ColumnRange`] predicate pushdown), verifies each
//! surviving chunk's checksum, and decodes only the projected columns.
//! [`RowFilter`] applies an exact row predicate downstream of the
//! pushdown. Terminal folds ([`for_each_row`]) drive the pull loop.
//!
//! Memory is bounded by construction: a scan holds one chunk record
//! buffer plus the decoded projected columns of that one chunk —
//! never a whole segment, never the whole lake. [`ScanStats`] records
//! `peak_resident_rows` so tests can assert the bound instead of
//! trusting it.

use crate::segment::{ColumnReader, SegmentReader, TableKind};
use crate::writer::Lake;
use crate::LakeError;
use std::path::PathBuf;

/// A column-major slice of rows (at most one chunk).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    /// One vector per projected column, each `rows` long.
    pub cols: Vec<Vec<u64>>,
    /// Rows in the batch.
    pub rows: usize,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Value of projected column `col` at `row`.
    pub fn value(&self, col: usize, row: usize) -> u64 {
        self.cols[col][row]
    }

    fn reset(&mut self, ncols: usize) {
        self.cols.resize(ncols, Vec::new());
        self.cols.truncate(ncols);
        for c in &mut self.cols {
            c.clear();
        }
        self.rows = 0;
    }
}

/// Counters a scan accumulates; the out-of-core proof lives in
/// `peak_resident_rows`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks read, verified, and decoded.
    pub chunks_read: u64,
    /// Chunks skipped by footer min/max pushdown without being read.
    pub chunks_skipped: u64,
    /// Rows decoded across all chunks.
    pub rows_scanned: u64,
    /// Largest number of rows resident at once (≤ the chunk row budget).
    pub peak_resident_rows: u64,
}

/// A pull-based operator: fills `out` with the next batch, `Ok(false)`
/// at end of stream.
pub trait Operator {
    /// Pulls the next batch into `out` (reusing its allocations).
    fn next_batch(&mut self, out: &mut Batch) -> Result<bool, LakeError>;
}

/// An inclusive value range on one (on-disk) column; chunks whose
/// footer `(min, max)` cannot intersect it are skipped unread.
#[derive(Debug, Clone, Copy)]
pub struct ColumnRange {
    /// On-disk column index the range constrains.
    pub col: usize,
    /// Smallest admissible value.
    pub min: u64,
    /// Largest admissible value.
    pub max: u64,
}

impl ColumnRange {
    /// Whether a row value satisfies the range.
    pub fn admits(&self, v: u64) -> bool {
        v >= self.min && v <= self.max
    }
}

/// The leaf operator: a projected, pushdown-filtered scan of one table
/// across every segment of a lake.
#[derive(Debug)]
pub struct TableScan {
    paths: Vec<PathBuf>,
    projection: Vec<usize>,
    ranges: Vec<ColumnRange>,
    seg_idx: usize,
    chunk_idx: usize,
    reader: Option<SegmentReader<std::fs::File>>,
    dict: Vec<String>,
    buf: Vec<u8>,
    stats: ScanStats,
}

impl TableScan {
    /// A scan of `table` returning the columns in `projection` (on-disk
    /// indices, in the order the consumer wants them), skipping chunks
    /// that cannot satisfy `ranges`.
    pub fn new(
        lake: &Lake,
        table: TableKind,
        projection: &[usize],
        ranges: Vec<ColumnRange>,
    ) -> Result<Self, LakeError> {
        let ncols = table.columns().len();
        for &c in projection {
            if c >= ncols {
                return Err(LakeError::Invalid(format!(
                    "projection column {c} out of range for table {}",
                    table.name()
                )));
            }
        }
        for r in &ranges {
            if r.col >= ncols {
                return Err(LakeError::Invalid(format!(
                    "predicate column {} out of range for table {}",
                    r.col,
                    table.name()
                )));
            }
        }
        Ok(TableScan {
            paths: lake.segments(table),
            projection: projection.to_vec(),
            ranges,
            seg_idx: 0,
            chunk_idx: 0,
            reader: None,
            dict: Vec::new(),
            buf: Vec::new(),
            stats: ScanStats::default(),
        })
    }

    /// A full-table scan of every column in on-disk order.
    pub fn full(lake: &Lake, table: TableKind) -> Result<Self, LakeError> {
        let all: Vec<usize> = (0..table.columns().len()).collect();
        TableScan::new(lake, table, &all, Vec::new())
    }

    /// String dictionary of the segment the most recent batch came from.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Scan counters so far.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }
}

impl Operator for TableScan {
    fn next_batch(&mut self, out: &mut Batch) -> Result<bool, LakeError> {
        loop {
            if self.reader.is_none() {
                let Some(path) = self.paths.get(self.seg_idx) else {
                    return Ok(false);
                };
                let reader = SegmentReader::open(std::fs::File::open(path)?)?;
                self.dict = reader.dict.clone();
                self.chunk_idx = 0;
                self.reader = Some(reader);
            }
            let reader = self
                .reader
                .as_mut()
                .ok_or(LakeError::Corrupt("scan reader vanished"))?;
            let Some(info) = reader.chunks.get(self.chunk_idx) else {
                self.reader = None;
                self.seg_idx += 1;
                continue;
            };
            let idx = self.chunk_idx;
            self.chunk_idx += 1;
            let prunable = self.ranges.iter().any(|r| {
                let (min, max) = info.minmax[r.col];
                info.rows > 0 && (max < r.min || min > r.max)
            });
            if prunable {
                self.stats.chunks_skipped += 1;
                continue;
            }
            reader.read_chunk(idx, &mut self.buf)?;
            let (rows, cols) = reader.chunk_columns(idx, &self.buf)?;
            out.reset(self.projection.len());
            for (slot, &ci) in self.projection.iter().enumerate() {
                let col = cols
                    .get(ci)
                    .ok_or(LakeError::Corrupt("projected column missing"))?;
                let mut r = ColumnReader::new(col, rows);
                let dst = &mut out.cols[slot];
                dst.reserve(rows as usize);
                while let Some(v) = r.next()? {
                    dst.push(v);
                }
                if !r.fully_consumed() {
                    return Err(LakeError::Corrupt("column has trailing bytes"));
                }
            }
            out.rows = rows as usize;
            self.stats.chunks_read += 1;
            self.stats.rows_scanned += rows;
            self.stats.peak_resident_rows = self.stats.peak_resident_rows.max(rows);
            if rows == 0 {
                continue;
            }
            return Ok(true);
        }
    }
}

/// Exact row-level filter over an upstream operator. The predicate sees
/// the upstream batch and a row index; kept rows are copied into the
/// output batch (still at most one chunk resident).
#[derive(Debug)]
pub struct RowFilter<Op, F> {
    input: Op,
    pred: F,
    tmp: Batch,
}

impl<Op: Operator, F: FnMut(&Batch, usize) -> bool> RowFilter<Op, F> {
    /// Wraps `input`, keeping rows where `pred` returns true.
    pub fn new(input: Op, pred: F) -> Self {
        RowFilter {
            input,
            pred,
            tmp: Batch::new(),
        }
    }

    /// The wrapped operator (for reading scan stats afterwards).
    pub fn inner(&self) -> &Op {
        &self.input
    }
}

impl<Op: Operator, F: FnMut(&Batch, usize) -> bool> Operator for RowFilter<Op, F> {
    fn next_batch(&mut self, out: &mut Batch) -> Result<bool, LakeError> {
        loop {
            if !self.input.next_batch(&mut self.tmp)? {
                return Ok(false);
            }
            out.reset(self.tmp.cols.len());
            for row in 0..self.tmp.rows {
                if (self.pred)(&self.tmp, row) {
                    for (dst, src) in out.cols.iter_mut().zip(&self.tmp.cols) {
                        dst.push(src[row]);
                    }
                    out.rows += 1;
                }
            }
            if out.rows > 0 {
                return Ok(true);
            }
        }
    }
}

/// Terminal fold: pulls every batch out of `op` and calls `f` once per
/// row.
pub fn for_each_row<Op: Operator>(
    op: &mut Op,
    mut f: impl FnMut(&Batch, usize),
) -> Result<(), LakeError> {
    let mut batch = Batch::new();
    while op.next_batch(&mut batch)? {
        for row in 0..batch.rows {
            f(&batch, row);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::CellRows;
    use crate::writer::{LakeConfig, LakeWriter};
    use millisampler::HostSeries;
    use ms_dcsim::Ns;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        // simlint: allow(env-read): tests write scratch lakes
        let dir = std::env::temp_dir().join(format!("ms-lake-query-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A lake whose series table has `cells` cells × `buckets` rows,
    /// chunked at `chunk_rows`.
    fn series_lake(dir: &PathBuf, cells: u64, buckets: usize, chunk_rows: usize) -> Lake {
        let w = LakeWriter::create(
            dir,
            LakeConfig {
                chunk_rows,
                segment_rows: u64::MAX,
            },
        )
        .unwrap();
        let mut shard = w.shard_writer(0).unwrap();
        for c in 0..cells {
            let mut s = HostSeries::zeroed(0, Ns::from_millis(c), Ns::from_millis(1), buckets);
            for (i, v) in s.in_bytes.iter_mut().enumerate() {
                *v = c * 10_000 + i as u64;
            }
            shard
                .append(&CellRows {
                    cell: c,
                    label: format!("cell-{c}"),
                    outcome: None,
                    bursts: Vec::new(),
                    series: vec![s],
                    forensics: Vec::new(),
                })
                .unwrap();
        }
        shard.finish().unwrap();
        w.compact().unwrap();
        Lake::open(dir).unwrap()
    }

    #[test]
    fn scan_streams_every_row_with_bounded_batches() {
        let dir = temp_dir("stream");
        let lake = series_lake(&dir, 8, 32, 16); // 256 rows, 16 chunks
        let cell_col = TableKind::Series.column("cell").unwrap();
        let in_col = TableKind::Series.column("in_bytes").unwrap();
        let mut scan =
            TableScan::new(&lake, TableKind::Series, &[cell_col, in_col], Vec::new()).unwrap();
        let mut rows = 0u64;
        let mut sum = 0u64;
        for_each_row(&mut scan, |b, r| {
            rows += 1;
            sum += b.value(1, r);
        })
        .unwrap();
        assert_eq!(rows, 256);
        let expect: u64 = (0..8u64)
            .flat_map(|c| (0..32u64).map(move |i| c * 10_000 + i))
            .sum();
        assert_eq!(sum, expect);
        let stats = scan.stats();
        assert_eq!(stats.chunks_read, 16);
        assert_eq!(stats.rows_scanned, 256);
        assert!(stats.peak_resident_rows <= 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_pushdown_skips_chunks_without_reading_them() {
        let dir = temp_dir("pushdown");
        let lake = series_lake(&dir, 8, 32, 32); // one chunk per cell
        let cell_col = TableKind::Series.column("cell").unwrap();
        let range = ColumnRange {
            col: cell_col,
            min: 3,
            max: 4,
        };
        let mut scan = TableScan::new(&lake, TableKind::Series, &[cell_col], vec![range]).unwrap();
        let mut cells_seen = Vec::new();
        for_each_row(&mut scan, |b, r| cells_seen.push(b.value(0, r))).unwrap();
        assert!(cells_seen.iter().all(|&c| c == 3 || c == 4));
        assert_eq!(cells_seen.len(), 64);
        let stats = scan.stats();
        assert_eq!(stats.chunks_read, 2);
        assert_eq!(stats.chunks_skipped, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn row_filter_applies_exact_predicate_after_pushdown() {
        let dir = temp_dir("filter");
        let lake = series_lake(&dir, 4, 16, 8);
        let bucket_col = TableKind::Series.column("bucket").unwrap();
        let scan = TableScan::new(&lake, TableKind::Series, &[bucket_col], Vec::new()).unwrap();
        let mut filter = RowFilter::new(scan, |b, r| b.value(0, r) % 2 == 0);
        let mut rows = 0u64;
        for_each_row(&mut filter, |b, r| {
            assert_eq!(b.value(0, r) % 2, 0);
            rows += 1;
        })
        .unwrap();
        assert_eq!(rows, 4 * 8);
        assert_eq!(filter.inner().stats().rows_scanned, 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_projection_is_rejected() {
        let dir = temp_dir("proj");
        let lake = series_lake(&dir, 1, 4, 4);
        assert!(TableScan::new(&lake, TableKind::Series, &[99], Vec::new()).is_err());
        assert!(TableScan::new(
            &lake,
            TableKind::Series,
            &[0],
            vec![ColumnRange {
                col: 99,
                min: 0,
                max: 0
            }]
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
