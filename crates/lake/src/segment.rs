//! The `MSL1` columnar segment format.
//!
//! A segment is one append-only file holding the rows of one table as
//! columns, split into fixed-row-count chunks:
//!
//! ```text
//! [header]   "MSL1", version, table kind, column names
//! [chunks]   per chunk: varint row count, then per column a
//!            length-prefixed delta + zigzag + varint byte run
//! [footer]   header length + FNV, per-chunk {offset, len, rows, FNV,
//!            per-column min/max}, string dictionary, total rows
//! [trailer]  footer length (8 LE) + footer FNV (8 LE) + "MSLF"
//! ```
//!
//! The fixed-width trailer lets a reader open a segment by seeking to
//! the end, so queries never scan bytes they will skip. Every byte of
//! the file is covered by some checksum (header and footer FNVs are
//! verified at open, chunk FNVs before each chunk is decoded), so any
//! single-byte corruption or truncation surfaces as `Err` — never a
//! panic, never a loop — while reads stay chunk-at-a-time out-of-core.
//!
//! Determinism: a segment's bytes are a pure function of the row
//! sequence pushed into [`SegmentWriter`] (delta state resets at every
//! chunk boundary so chunks decode independently for predicate
//! pushdown). Writers that push the same rows in the same order emit
//! byte-identical files regardless of thread count upstream.

use crate::LakeError;
use millisampler::codec::{self, DecodeError, WireReader, WireWriter};
use std::io::{Read, Seek, SeekFrom};

/// Segment header magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"MSL1";
/// Trailer magic (distinct, so a truncated header is never mistaken for
/// a trailer).
pub const TRAILER_MAGIC: &[u8; 4] = b"MSLF";
/// Fixed trailer size: footer length + footer FNV + magic.
pub const TRAILER_LEN: u64 = 20;
/// Format version.
pub const SEGMENT_VERSION: u64 = 1;

/// The tables a lake holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// One row per grid cell: status + the flattened [`RunOutcome`]
    /// scalars (floats as raw bits).
    ///
    /// [`RunOutcome`]: ms_analysis::RunOutcome
    Outcomes,
    /// One row per classified burst ([`ms_analysis::BurstRow`]).
    Bursts,
    /// One row per (host, bucket) sample of every millisampler series.
    Series,
    /// One row per classified drop forensic
    /// ([`ms_telemetry::DropForensic`]).
    Forensics,
}

/// Column names of the `outcomes` table.
pub const OUTCOME_COLS: &[&str] = &[
    "cell",
    "status",
    "label",
    "error",
    "switch_ingress_bytes",
    "switch_discard_bytes",
    "flows_started",
    "conns_completed",
    "events",
    "total_in_bytes",
    "total_retx_bytes",
    "bursts",
    "contended_bursts",
    "lossy_bursts",
    "contention_avg_bits",
    "contention_p90",
    "contention_max",
    "active_servers",
    "bursty_servers",
    "policy",
];

/// Column names of the `bursts` table.
pub const BURST_COLS: &[&str] = &[
    "cell",
    "server",
    "start",
    "len",
    "bytes",
    "avg_conns_bits",
    "max_contention",
    "contended",
    "lossy",
    "retx_bytes",
];

/// Column names of the `forensics` table (the flattened
/// [`ms_telemetry::DropForensic`], with enum fields stored as their
/// stable codes).
pub const FORENSIC_COLS: &[&str] = &[
    "cell",
    "ns",
    "queue",
    "flow",
    "size",
    "reason",
    "cause",
    "queue_occupancy",
    "shared_occupancy",
    "dt_threshold",
    "burst_len",
    "competing_flows",
    "self_bytes",
    "other_bytes",
    "ecn",
    "recent_kinds",
];

/// Column names of the `series` table.
pub const SERIES_COLS: &[&str] = &[
    "cell",
    "host",
    "run_start_ns",
    "interval_ns",
    "bucket",
    "in_bytes",
    "in_retx",
    "out_bytes",
    "out_retx",
    "in_ecn",
    "conns",
];

impl TableKind {
    /// Stable on-disk id.
    pub fn id(self) -> u64 {
        match self {
            TableKind::Outcomes => 0,
            TableKind::Bursts => 1,
            TableKind::Series => 2,
            TableKind::Forensics => 3,
        }
    }

    /// Inverse of [`TableKind::id`].
    pub fn from_id(id: u64) -> Option<Self> {
        match id {
            0 => Some(TableKind::Outcomes),
            1 => Some(TableKind::Bursts),
            2 => Some(TableKind::Series),
            3 => Some(TableKind::Forensics),
            _ => None,
        }
    }

    /// Table name used in file names, the manifest, and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Outcomes => "outcomes",
            TableKind::Bursts => "bursts",
            TableKind::Series => "series",
            TableKind::Forensics => "forensics",
        }
    }

    /// Parses a CLI table name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "outcomes" => Some(TableKind::Outcomes),
            "bursts" => Some(TableKind::Bursts),
            "series" => Some(TableKind::Series),
            "forensics" => Some(TableKind::Forensics),
            _ => None,
        }
    }

    /// The table's column names, in on-disk order.
    pub fn columns(self) -> &'static [&'static str] {
        match self {
            TableKind::Outcomes => OUTCOME_COLS,
            TableKind::Bursts => BURST_COLS,
            TableKind::Series => SERIES_COLS,
            TableKind::Forensics => FORENSIC_COLS,
        }
    }

    /// Index of a named column.
    pub fn column(self, name: &str) -> Option<usize> {
        self.columns().iter().position(|&c| c == name)
    }
}

/// Streaming encoder for one column of the current chunk: delta +
/// zigzag + varint, with running min/max for the chunk footer.
///
/// `push` is on simlint's hot-path list (one call per value written to
/// the lake): no panics, no allocation beyond the amortized `Vec`
/// growth of the output buffer.
#[derive(Debug)]
pub struct ColumnWriter {
    buf: Vec<u8>,
    prev: i64,
    rows: u64,
    min: u64,
    max: u64,
}

impl Default for ColumnWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnWriter {
    /// An empty column encoder.
    pub fn new() -> Self {
        ColumnWriter {
            buf: Vec::new(),
            prev: 0,
            rows: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Appends one value to the current chunk.
    #[inline]
    pub fn push(&mut self, v: u64) {
        // Wrapping: f64 bit patterns use the full u64 range, so deltas
        // may wrap; the reader reverses with wrapping_add.
        let delta = (v as i64).wrapping_sub(self.prev);
        codec::put_varint(&mut self.buf, codec::zigzag(delta));
        self.prev = v as i64;
        self.rows += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Rows in the current chunk.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Takes the chunk's encoded bytes and `(min, max)`, resetting the
    /// encoder (including the delta base) so the next chunk decodes
    /// independently.
    pub fn take_chunk(&mut self) -> (Vec<u8>, u64, u64) {
        let bytes = std::mem::take(&mut self.buf);
        let (min, max) = if self.rows == 0 {
            (0, 0)
        } else {
            (self.min, self.max)
        };
        self.prev = 0;
        self.rows = 0;
        self.min = u64::MAX;
        self.max = 0;
        (bytes, min, max)
    }
}

/// Streaming decoder for one column chunk.
///
/// `next` is on simlint's hot-path list (one call per value scanned):
/// no panics, no allocation. Values are reconstructed with wrapping
/// two's-complement arithmetic and **no clamping**, so `u64` bit
/// patterns (including stored `f64` bits) round-trip losslessly.
#[derive(Debug)]
pub struct ColumnReader<'a> {
    data: &'a [u8],
    pos: usize,
    prev: i64,
    remaining: u64,
}

impl<'a> ColumnReader<'a> {
    /// A decoder over `data` holding `rows` encoded values.
    pub fn new(data: &'a [u8], rows: u64) -> Self {
        ColumnReader {
            data,
            pos: 0,
            prev: 0,
            remaining: rows,
        }
    }

    /// Decodes the next value; `Ok(None)` at end of chunk.
    #[inline]
    pub fn next(&mut self) -> Result<Option<u64>, DecodeError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = match self.data.get(self.pos) {
                Some(&b) => b,
                None => return Err(DecodeError::Truncated),
            };
            self.pos += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Overlong);
            }
        }
        self.prev = self.prev.wrapping_add(codec::unzigzag(v));
        self.remaining -= 1;
        Ok(Some(self.prev as u64))
    }

    /// Whether every encoded byte was consumed (writer-side sanity).
    pub fn fully_consumed(&self) -> bool {
        self.remaining == 0 && self.pos == self.data.len()
    }
}

/// Footer metadata for one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Absolute file offset of the chunk record.
    pub offset: u64,
    /// Chunk record length in bytes.
    pub len: u64,
    /// Rows in the chunk.
    pub rows: u64,
    /// FNV-1a 64 of the chunk record bytes.
    pub fnv: u64,
    /// Per-column `(min, max)` over the chunk, for predicate pushdown.
    pub minmax: Vec<(u64, u64)>,
}

/// Builds one segment in memory (bounded by the segment row budget) and
/// emits its canonical bytes.
#[derive(Debug)]
pub struct SegmentWriter {
    kind: TableKind,
    chunk_rows: usize,
    cols: Vec<ColumnWriter>,
    body: Vec<u8>,
    chunks: Vec<ChunkInfo>,
    dict: Vec<String>,
    rows_in_chunk: usize,
    total_rows: u64,
}

impl SegmentWriter {
    /// A writer for `kind` that closes a chunk every `chunk_rows` rows.
    pub fn new(kind: TableKind, chunk_rows: usize) -> Self {
        let ncols = kind.columns().len();
        SegmentWriter {
            kind,
            chunk_rows: chunk_rows.max(1),
            cols: (0..ncols).map(|_| ColumnWriter::new()).collect(),
            body: Vec::new(),
            chunks: Vec::new(),
            dict: Vec::new(),
            rows_in_chunk: 0,
            total_rows: 0,
        }
    }

    /// Interns `s` into the segment dictionary, returning its id.
    pub fn dict_id(&mut self, s: &str) -> u64 {
        if let Some(i) = self.dict.iter().position(|d| d == s) {
            return i as u64;
        }
        self.dict.push(s.to_string());
        (self.dict.len() - 1) as u64
    }

    /// Appends one row. `values` must have one entry per column.
    pub fn push_row(&mut self, values: &[u64]) -> Result<(), LakeError> {
        if values.len() != self.cols.len() {
            return Err(LakeError::Invalid(format!(
                "row arity {} != {} columns of table {}",
                values.len(),
                self.cols.len(),
                self.kind.name()
            )));
        }
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows_in_chunk += 1;
        self.total_rows += 1;
        if self.rows_in_chunk >= self.chunk_rows {
            self.flush_chunk();
        }
        Ok(())
    }

    /// Rows pushed so far.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    fn flush_chunk(&mut self) {
        if self.rows_in_chunk == 0 {
            return;
        }
        let mut record = Vec::new();
        codec::put_varint(&mut record, self.rows_in_chunk as u64);
        let mut minmax = Vec::with_capacity(self.cols.len());
        for col in &mut self.cols {
            let (bytes, min, max) = col.take_chunk();
            codec::put_varint(&mut record, bytes.len() as u64);
            record.extend_from_slice(&bytes);
            minmax.push((min, max));
        }
        self.chunks.push(ChunkInfo {
            offset: self.body.len() as u64, // body-relative; absolute at finish
            len: record.len() as u64,
            rows: self.rows_in_chunk as u64,
            fnv: codec::fnv1a64(&record),
            minmax,
        });
        self.body.extend_from_slice(&record);
        self.rows_in_chunk = 0;
    }

    /// Finalizes the segment and returns its canonical bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_chunk();

        let mut hw = WireWriter::with_magic(SEGMENT_MAGIC);
        hw.u64(SEGMENT_VERSION);
        hw.u64(self.kind.id());
        hw.u64(self.kind.columns().len() as u64);
        for name in self.kind.columns() {
            hw.str(name);
        }
        let header = hw.finish();
        let header_len = header.len() as u64;

        let mut fw = WireWriter::new();
        fw.u64(header_len);
        fw.u64(codec::fnv1a64(&header));
        fw.u64(self.chunks.len() as u64);
        for c in &self.chunks {
            fw.u64(c.offset + header_len);
            fw.u64(c.len);
            fw.u64(c.rows);
            fw.u64(c.fnv);
            for &(min, max) in &c.minmax {
                fw.u64(min);
                fw.u64(max);
            }
        }
        fw.u64(self.dict.len() as u64);
        for s in &self.dict {
            fw.str(s);
        }
        fw.u64(self.total_rows);
        let footer = fw.finish();

        let mut out = header;
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&footer);
        out.extend_from_slice(&(footer.len() as u64).to_le_bytes());
        out.extend_from_slice(&codec::fnv1a64(&footer).to_le_bytes());
        out.extend_from_slice(TRAILER_MAGIC);
        out
    }
}

/// An open segment: parsed header/footer plus a seekable source the
/// chunks are read from on demand.
#[derive(Debug)]
pub struct SegmentReader<R> {
    src: R,
    /// The table this segment belongs to.
    pub kind: TableKind,
    /// Column names, in on-disk order.
    pub col_names: Vec<String>,
    /// Per-chunk footer metadata.
    pub chunks: Vec<ChunkInfo>,
    /// Segment string dictionary (labels, error messages).
    pub dict: Vec<String>,
    /// Total rows across all chunks.
    pub total_rows: u64,
}

impl<R: Read + Seek> SegmentReader<R> {
    /// Opens a segment: verifies the trailer magic, footer FNV, header
    /// FNV, and the internal consistency of the chunk index.
    pub fn open(mut src: R) -> Result<Self, LakeError> {
        let file_len = src.seek(SeekFrom::End(0))?;
        if file_len < TRAILER_LEN + 4 {
            return Err(LakeError::Corrupt("segment shorter than trailer"));
        }
        src.seek(SeekFrom::Start(file_len - TRAILER_LEN))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        src.read_exact(&mut trailer)?;
        if &trailer[16..20] != TRAILER_MAGIC {
            return Err(LakeError::Corrupt("bad trailer magic"));
        }
        let footer_len = u64::from_le_bytes(
            trailer[0..8]
                .try_into()
                .map_err(|_| LakeError::Corrupt("trailer slice"))?,
        );
        let stored_footer_fnv = u64::from_le_bytes(
            trailer[8..16]
                .try_into()
                .map_err(|_| LakeError::Corrupt("trailer slice"))?,
        );
        let footer_start = file_len
            .checked_sub(TRAILER_LEN)
            .and_then(|v| v.checked_sub(footer_len))
            .ok_or(LakeError::Corrupt("footer length exceeds file"))?;
        src.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; footer_len as usize];
        src.read_exact(&mut footer)?;
        if codec::fnv1a64(&footer) != stored_footer_fnv {
            return Err(LakeError::Corrupt("footer checksum mismatch"));
        }

        let mut fr = WireReader::new(&footer);
        let header_len = fr.u64()?;
        let header_fnv = fr.u64()?;
        if header_len > footer_start || header_len < 4 {
            return Err(LakeError::Corrupt("header length out of range"));
        }
        src.seek(SeekFrom::Start(0))?;
        let mut header = vec![0u8; header_len as usize];
        src.read_exact(&mut header)?;
        if codec::fnv1a64(&header) != header_fnv {
            return Err(LakeError::Corrupt("header checksum mismatch"));
        }
        let mut hr = WireReader::new(&header);
        hr.expect_magic(SEGMENT_MAGIC)?;
        if hr.u64()? != SEGMENT_VERSION {
            return Err(LakeError::Corrupt("unsupported segment version"));
        }
        let kind = TableKind::from_id(hr.u64()?).ok_or(LakeError::Corrupt("unknown table kind"))?;
        let ncols = hr.u64()?;
        if ncols as usize != kind.columns().len() {
            return Err(LakeError::Corrupt("column count mismatch"));
        }
        let mut col_names = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            col_names.push(hr.string()?);
        }

        let n_chunks = fr.u64()?;
        if n_chunks > footer_len {
            // Each chunk entry takes several footer bytes; a count larger
            // than the footer itself is corrupt (and would over-allocate).
            return Err(LakeError::Corrupt("chunk count exceeds footer"));
        }
        let mut chunks = Vec::with_capacity(n_chunks as usize);
        for _ in 0..n_chunks {
            let offset = fr.u64()?;
            let len = fr.u64()?;
            let rows = fr.u64()?;
            let fnv = fr.u64()?;
            let mut minmax = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                minmax.push((fr.u64()?, fr.u64()?));
            }
            let end = offset
                .checked_add(len)
                .ok_or(LakeError::Corrupt("chunk extent overflow"))?;
            if offset < header_len || end > footer_start {
                return Err(LakeError::Corrupt("chunk extent out of range"));
            }
            chunks.push(ChunkInfo {
                offset,
                len,
                rows,
                fnv,
                minmax,
            });
        }
        let n_dict = fr.u64()?;
        if n_dict > footer_len {
            return Err(LakeError::Corrupt("dict count exceeds footer"));
        }
        let mut dict = Vec::with_capacity(n_dict as usize);
        for _ in 0..n_dict {
            dict.push(fr.string()?);
        }
        let total_rows = fr.u64()?;
        if chunks.iter().map(|c| c.rows).sum::<u64>() != total_rows {
            return Err(LakeError::Corrupt("row totals disagree"));
        }

        Ok(SegmentReader {
            src,
            kind,
            col_names,
            chunks,
            dict,
            total_rows,
        })
    }

    /// Reads and checksum-verifies chunk `idx` into `buf` (reused across
    /// calls so a scan holds one chunk at a time).
    pub fn read_chunk(&mut self, idx: usize, buf: &mut Vec<u8>) -> Result<(), LakeError> {
        let info = self
            .chunks
            .get(idx)
            .ok_or(LakeError::Corrupt("chunk index out of range"))?;
        self.src.seek(SeekFrom::Start(info.offset))?;
        buf.resize(info.len as usize, 0);
        self.src.read_exact(buf)?;
        if codec::fnv1a64(buf) != info.fnv {
            return Err(LakeError::Corrupt("chunk checksum mismatch"));
        }
        Ok(())
    }

    /// Splits a verified chunk record into per-column byte runs.
    pub fn chunk_columns<'a>(
        &self,
        idx: usize,
        buf: &'a [u8],
    ) -> Result<(u64, Vec<&'a [u8]>), LakeError> {
        let info = self
            .chunks
            .get(idx)
            .ok_or(LakeError::Corrupt("chunk index out of range"))?;
        let mut pos = 0usize;
        let rows = read_varint(buf, &mut pos)?;
        if rows != info.rows {
            return Err(LakeError::Corrupt("chunk row count disagrees with footer"));
        }
        let mut cols = Vec::with_capacity(self.col_names.len());
        for _ in 0..self.col_names.len() {
            let len = read_varint(buf, &mut pos)? as usize;
            let end = pos
                .checked_add(len)
                .ok_or(LakeError::Corrupt("column extent overflow"))?;
            if end > buf.len() {
                return Err(LakeError::Corrupt("column extent out of range"));
            }
            cols.push(&buf[pos..end]);
            pos = end;
        }
        if pos != buf.len() {
            return Err(LakeError::Corrupt("trailing bytes after last column"));
        }
        Ok((rows, cols))
    }
}

/// Reads one LEB128 varint out of `data` at `*pos`.
pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, LakeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or(LakeError::Decode(DecodeError::Truncated))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(LakeError::Decode(DecodeError::Overlong));
        }
    }
}

/// Fully verifies a segment held in memory: header, footer, every chunk
/// checksum, and a decode of every value of every column. Returns the
/// row count. Used by `lake stat` and the corruption tests.
pub fn verify_segment_bytes(bytes: &[u8]) -> Result<u64, LakeError> {
    let mut reader = SegmentReader::open(std::io::Cursor::new(bytes))?;
    let mut buf = Vec::new();
    let n_chunks = reader.chunks.len();
    let mut rows_seen = 0u64;
    for idx in 0..n_chunks {
        reader.read_chunk(idx, &mut buf)?;
        let (rows, cols) = reader.chunk_columns(idx, &buf)?;
        for (ci, col) in cols.iter().enumerate() {
            let mut r = ColumnReader::new(col, rows);
            let (mut min, mut max, mut any) = (u64::MAX, 0u64, false);
            while let Some(v) = r.next()? {
                min = min.min(v);
                max = max.max(v);
                any = true;
            }
            if !r.fully_consumed() {
                return Err(LakeError::Corrupt("column has trailing bytes"));
            }
            let expect = reader.chunks[idx].minmax[ci];
            if any && (min, max) != expect {
                return Err(LakeError::Corrupt("footer min/max disagree with data"));
            }
        }
        rows_seen += rows;
    }
    if rows_seen != reader.total_rows {
        return Err(LakeError::Corrupt("row totals disagree"));
    }
    Ok(rows_seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment(rows: u64, chunk_rows: usize) -> Vec<u8> {
        let mut w = SegmentWriter::new(TableKind::Bursts, chunk_rows);
        for i in 0..rows {
            let vals = [
                i / 7,
                i % 5,
                i,
                1 + i % 3,
                1000 + i * 17,
                (0.5 + i as f64).to_bits(),
                i % 4,
                u64::from(i % 4 >= 2),
                u64::from(i % 9 == 0),
                i % 2 * 300,
            ];
            w.push_row(&vals).unwrap();
        }
        w.finish()
    }

    #[test]
    fn column_round_trip_preserves_bit_patterns() {
        let mut w = ColumnWriter::new();
        let values = [0u64, 5, u64::MAX, (-1.5f64).to_bits(), 1, u64::MAX / 2];
        for &v in &values {
            w.push(v);
        }
        let (bytes, min, max) = w.take_chunk();
        assert_eq!(min, 0);
        assert_eq!(max, u64::MAX);
        let mut r = ColumnReader::new(&bytes, values.len() as u64);
        for &v in &values {
            assert_eq!(r.next().unwrap(), Some(v));
        }
        assert_eq!(r.next().unwrap(), None);
        assert!(r.fully_consumed());
    }

    #[test]
    fn take_chunk_resets_delta_base() {
        let mut w = ColumnWriter::new();
        w.push(1000);
        let (first, ..) = w.take_chunk();
        w.push(1000);
        let (second, ..) = w.take_chunk();
        // Same value, fresh base: identical encodings — chunks decode
        // independently, which is what makes pushdown skipping sound.
        assert_eq!(first, second);
    }

    #[test]
    fn segment_round_trip_and_verify() {
        let bytes = sample_segment(100, 16);
        assert_eq!(verify_segment_bytes(&bytes).unwrap(), 100);
        let r = SegmentReader::open(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(r.kind, TableKind::Bursts);
        assert_eq!(r.total_rows, 100);
        assert_eq!(r.chunks.len(), 7); // 6 full chunks of 16 + 1 of 4
        assert_eq!(r.col_names.len(), BURST_COLS.len());
        // "cell" column of the first chunk covers cells 0..=2.
        assert_eq!(r.chunks[0].minmax[0], (0, 2));
    }

    #[test]
    fn identical_rows_produce_identical_bytes() {
        assert_eq!(sample_segment(50, 8), sample_segment(50, 8));
        assert_ne!(sample_segment(50, 8), sample_segment(50, 16));
    }

    #[test]
    fn empty_segment_is_valid() {
        let w = SegmentWriter::new(TableKind::Series, 64);
        let bytes = w.finish();
        assert_eq!(verify_segment_bytes(&bytes).unwrap(), 0);
    }

    #[test]
    fn dictionary_round_trips_and_dedups() {
        let mut w = SegmentWriter::new(TableKind::Outcomes, 8);
        assert_eq!(w.dict_id("alpha"), 0);
        assert_eq!(w.dict_id("beta"), 1);
        assert_eq!(w.dict_id("alpha"), 0);
        let mut row = vec![0u64; OUTCOME_COLS.len()];
        row[2] = 1; // label = "beta"
        w.push_row(&row).unwrap();
        let bytes = w.finish();
        let r = SegmentReader::open(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(r.dict, vec!["alpha", "beta"]);
    }

    #[test]
    fn wrong_arity_row_is_rejected() {
        let mut w = SegmentWriter::new(TableKind::Series, 8);
        assert!(w.push_row(&[1, 2, 3]).is_err());
    }

    #[test]
    fn truncation_is_always_rejected() {
        let bytes = sample_segment(40, 16);
        for cut in 0..bytes.len() {
            assert!(
                verify_segment_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes decoded"
            );
        }
    }
}
