//! Ablation benches for the design choices DESIGN.md §4 calls out.
//!
//! These are *outcome* ablations (loss, completion, accuracy) rather than
//! time measurements, so they use a custom harness (`harness = false`)
//! that prints comparison tables:
//!
//! 1. **α sweep** — drops and ECN marks for the same incast workload under
//!    DT α ∈ {0.25, 0.5, 1, 2, 4} (§2.2: the choice of α matters most at
//!    low contention).
//! 2. **Buffer sharing policy** — DT vs. complete sharing vs. static
//!    partition under a contended incast (§9/§10 motivation).
//! 3. **ECN threshold sweep** around the deployed 120 KB.
//! 4. **Fabric smoothing on/off** for ML-style transfers — the §8.1
//!    hypothesis for why RegA-High loses less.
//! 5. **Sketch width** — estimate error vs. true flow counts for 64/128/
//!    256-bit direct bitmaps and the multiresolution variant.

use ms_dcsim::{Bps, BufferPolicySpec, Bytes, Ns};
use ms_sketch::{mix64, FlowSketch, MultiresBitmap};
use ms_transport::CcAlgorithm;
use ms_workload::{FlowSpec, ScenarioBuilder};

fn incast(dst: usize, conns: u32, bytes: u64, paced: Option<Bps>) -> FlowSpec {
    FlowSpec {
        dst_server: dst,
        connections: conns,
        total_bytes: bytes,
        algorithm: CcAlgorithm::Dctcp,
        paced_bps: paced,
        task: 1,
    }
}

/// A contended scenario: three queues receive staggered heavy incasts.
fn contended(b: &mut ScenarioBuilder) {
    b.buckets(200).warmup(Ns::from_millis(10));
    for (i, dst) in [0usize, 1, 2].iter().enumerate() {
        b.flow_at(
            Ns::from_millis(20 + 3 * i as u64),
            incast(*dst, 120, 20_000_000, None),
        );
        b.flow_at(
            Ns::from_millis(120 + 3 * i as u64),
            incast(*dst, 120, 20_000_000, None),
        );
    }
}

fn alpha_sweep() {
    println!("\n## ablation: DT alpha sweep (same contended incast workload)");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "alpha", "discard_bytes", "ingress_bytes", "completed"
    );
    for alpha in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut b = ScenarioBuilder::new(8, 7);
        b.alpha(alpha);
        contended(&mut b);
        let report = b.build().run_sync_window(0);
        println!(
            "{alpha:>8} {:>16} {:>16} {:>12}",
            report.switch_discard_bytes, report.switch_ingress_bytes, report.conns_completed
        );
    }
    println!("(expectation: low alpha starves bursts -> more drops; very high alpha lets one");
    println!(" queue hog the quadrant, hurting the later-arriving incasts)");
}

fn policy_comparison() {
    println!("\n## ablation: buffer sharing policy (same contended incast workload)");
    println!(
        "{:>18} {:>16} {:>12}",
        "policy", "discard_bytes", "completed"
    );
    for (name, policy) in [
        (
            "dynamic_threshold",
            BufferPolicySpec::DtAlpha { alpha: 1.0 },
        ),
        ("complete_sharing", BufferPolicySpec::CompleteSharing),
        ("static_partition", BufferPolicySpec::StaticPartition),
        ("flexible_bounds", BufferPolicySpec::FlexibleBounds),
        (
            "delay_driven",
            BufferPolicySpec::DelayDriven {
                target: Ns::from_micros(500),
                drain: Bps(12_500_000_000),
            },
        ),
    ] {
        let mut b = ScenarioBuilder::new(8, 7);
        b.buffer_policy(policy);
        contended(&mut b);
        let report = b.build().run_sync_window(0);
        println!(
            "{name:>18} {:>16} {:>12}",
            report.switch_discard_bytes, report.conns_completed
        );
    }
    println!("(expectation: static partition drops most — no multiplexing; complete sharing");
    println!(" lets the first burst monopolize the quadrant at the expense of later ones)");
}

fn ecn_sweep() {
    println!("\n## ablation: ECN threshold sweep (deployed value: 120 KB)");
    println!(
        "{:>10} {:>16} {:>16}",
        "thresh_kb", "discard_bytes", "marked_ingress?"
    );
    for kb in [30u64, 60, 120, 240, 480] {
        let mut b = ScenarioBuilder::new(8, 7);
        b.ecn_threshold(Bytes(kb * 1024));
        contended(&mut b);
        let report = b.build().run_sync_window(0);
        let ecn: u64 = report
            .rack_run
            .as_ref()
            .map(|r| r.servers.iter().map(|s| s.in_ecn.iter().sum::<u64>()).sum())
            .unwrap_or(0);
        println!("{kb:>10} {:>16} {ecn:>16}", report.switch_discard_bytes);
    }
    println!("(expectation: lower threshold -> more marks, fewer drops but lower throughput;");
    println!(" higher threshold -> fewer marks, drops reappear as DCTCP reacts too late)");
}

fn smoothing_ablation() {
    println!("\n## ablation: fabric smoothing of ML transfers (the §8.1 hypothesis)");
    println!(
        "{:>10} {:>16} {:>12}",
        "paced", "discard_bytes", "completed"
    );
    for (name, pace) in [("off", None), ("10Gbps", Some(Bps(10_000_000_000)))] {
        let mut b = ScenarioBuilder::new(8, 11);
        b.buckets(300).warmup(Ns::from_millis(10));
        // Six "trainers" receive synchronized 10MB steps.
        for step in 0..3u64 {
            for dst in 0..6usize {
                b.flow_at(
                    Ns::from_millis(20 + step * 80),
                    incast(dst, 6, 10_000_000, pace),
                );
            }
        }
        let report = b.build().run_sync_window(0);
        println!(
            "{name:>10} {:>16} {:>12}",
            report.switch_discard_bytes, report.conns_completed
        );
    }
    println!("(expectation: paced arrivals keep queues near the ECN threshold and avoid the");
    println!(" drops that unpaced synchronized multi-MB steps cause — RegA-High's low loss)");
}

fn sampling_interval_ablation() {
    use ms_analysis::detect_bursts;
    use ms_workload::sim::GroConfig;
    println!("\n## ablation: sampling interval (why the paper uses 1 ms, §5/§4.6)");
    println!(
        "{:>10} {:>6} {:>8} {:>12} {:>16}",
        "interval", "gro", "bursts", "max_rate_pct", "over_linerate"
    );
    for (interval, buckets) in [
        (Ns::from_micros(100), 2000usize),
        (Ns::from_millis(1), 400),
        (Ns::from_millis(10), 40),
    ] {
        for gro in [false, true] {
            let mut b = ScenarioBuilder::new(8, 41);
            b.interval(interval)
                .buckets(buckets)
                .count_flows(true)
                .warmup(Ns::from_millis(10));
            if gro {
                b.gro(GroConfig::default());
            }
            // A few separated multi-ms bursts.
            for i in 0..3u64 {
                b.flow_at(Ns::from_millis(20 + i * 60), incast(2, 8, 5_000_000, None));
            }
            let report = b.build().run_sync_window(0);
            let Some(run) = report.rack_run else { continue };
            let bursts = detect_bursts(&run.servers[2], Bps(12_500_000_000)).len();
            let cap = interval.bytes_at_rate(Bps(12_500_000_000)).as_u64().max(1);
            let max_rate = run.servers[2]
                .in_bytes
                .iter()
                .map(|&b| 100 * b / cap)
                .max()
                .unwrap_or(0);
            let over = run.servers[2].in_bytes.iter().filter(|&&b| b > cap).count();
            println!(
                "{:>10} {:>6} {:>8} {:>11}% {:>16}",
                format!("{interval}"),
                gro,
                bursts,
                max_rate,
                over
            );
        }
    }
    println!("(100µs + GRO shows >line-rate artifacts (§4.6); 10ms smears distinct bursts");
    println!(" together; 1ms resolves bursts without artifacts — the paper's choice)");
}

fn sketch_width_ablation() {
    println!("\n## ablation: flow sketch width vs. true connection count");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>14}",
        "true_n", "bits64", "bits128", "bits256", "multires128x8"
    );
    for n in [4u64, 12, 50, 150, 400, 1000] {
        let mut s64 = FlowSketch::<1>::new();
        let mut s128 = FlowSketch::<2>::new();
        let mut s256 = FlowSketch::<4>::new();
        let mut mr: MultiresBitmap<2, 8> = MultiresBitmap::new();
        for i in 0..n {
            let h = mix64(i * 2654435761 + n);
            s64.insert(h);
            s128.insert(h);
            s256.insert(h);
            mr.insert(h);
        }
        println!(
            "{n:>8} {:>10.1} {:>10.1} {:>10.1} {:>14.1}",
            s64.estimate(),
            s128.estimate(),
            s256.estimate(),
            mr.estimate()
        );
    }
    println!("(the deployed 128-bit sketch is precise to ~a dozen and saturates ~500-600,");
    println!(" exactly the §4.2 characterization; wider sketches push the saturation out)");
}

fn fabric_hop_ablation() {
    use ms_workload::sim::FabricHopConfig;
    println!("\n## ablation: parametric pacing vs an explicit fabric hop (§8.1)");
    println!(
        "{:>22} {:>16} {:>14}",
        "smoothing", "tor_discards", "fabric_drops"
    );
    for (name, pace, hop) in [
        ("none", None, None),
        ("pacer_11Gbps", Some(Bps(11_000_000_000)), None),
        (
            "fabric_trunk_25Gbps",
            None,
            Some(FabricHopConfig {
                rate_bps: Bps(25_000_000_000),
                buffer_bytes: Bytes::from_mib(24),
            }),
        ),
    ] {
        let mut b = ScenarioBuilder::new(8, 31);
        b.buckets(250).warmup(Ns::from_millis(10));
        if let Some(hop) = hop {
            b.fabric_hop(hop);
        }
        if let Some(bps) = pace {
            b.fabric_smoothing(bps);
        }
        b.flow_at(Ns::from_millis(30), incast(1, 150, 25_000_000, None));
        let mut sim = b.build();
        let fabric_drops_before = sim.fabric_drops();
        let report = sim.run_sync_window(0);
        println!(
            "{name:>22} {:>16} {:>14}",
            report.switch_discard_bytes,
            sim.fabric_drops() - fabric_drops_before
        );
        let _ = report;
    }
    println!("(both forms of smoothing protect the shallow ToR buffer; the explicit hop");
    println!(" shows the paper's point that RegA-High's congestion moved INTO the fabric)");
}

fn dynamic_alpha_ablation() {
    println!("\n## ablation: fixed vs contention-tuned DT alpha (§9 probe)");
    println!(
        "{:>18} {:>16} {:>12}",
        "alpha_policy", "discard_bytes", "completed"
    );
    for (name, tune) in [("fixed_1.0", None), ("tuned_5ms", Some(Ns::from_millis(5)))] {
        let mut b = ScenarioBuilder::new(8, 33);
        if let Some(period) = tune {
            b.alpha_tune_period(period);
        }
        contended(&mut b);
        let report = b.build().run_sync_window(0);
        println!(
            "{name:>18} {:>16} {:>12}",
            report.switch_discard_bytes, report.conns_completed
        );
    }
    println!("(the tuner raises alpha when few queues are active — absorbing lone bursts —");
    println!(" and lowers it under contention; §9 asks whether this is worth operating)");
}

fn main() {
    // `cargo bench` passes flags like --bench; ignore them.
    println!("=== millisampler-rs ablation benches ===");
    alpha_sweep();
    policy_comparison();
    ecn_sweep();
    smoothing_ablation();
    fabric_hop_ablation();
    dynamic_alpha_ablation();
    sampling_interval_ablation();
    sketch_width_ablation();
}
