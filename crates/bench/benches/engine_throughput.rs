//! Event-engine throughput: schedule+pop cycles (the unit cost every
//! simulated packet pays ~3-5 times) and an end-to-end rack window.

use ms_bench::micro::bench;
use ms_dcsim::{EventQueue, Ns};
use std::hint::black_box;

fn bench_schedule_pop() {
    for &depth in &[16usize, 1024, 65_536] {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..depth as u64 {
            q.schedule(Ns(i * 1000), i);
        }
        let mut t = depth as u64 * 1000;
        bench(&format!("event_queue/sched_pop_depth_{depth}"), || {
            let (at, ev) = q.pop().expect("queue kept full");
            black_box((at, ev));
            t += 1000;
            q.schedule(Ns(t), ev);
        });
    }
}

fn bench_full_rack_window() {
    use ms_transport::CcAlgorithm;
    use ms_workload::{FlowSpec, ScenarioBuilder};
    // End-to-end: one small incast through the full stack (events, switch,
    // transport, millisampler). Measures simulated-packets/sec capacity.
    bench("end_to_end/incast_window_8x2MB", || {
        let mut b = ScenarioBuilder::new(8, 1);
        b.buckets(100).warmup(Ns::from_millis(5)).flow_at(
            Ns::from_millis(10),
            FlowSpec {
                dst_server: 1,
                connections: 8,
                total_bytes: 2_000_000,
                algorithm: CcAlgorithm::Dctcp,
                paced_bps: None,
                task: 1,
            },
        );
        black_box(b.build().run_sync_window(0).events)
    });
}

fn main() {
    println!("=== event engine ===");
    bench_schedule_pop();
    bench_full_rack_window();
}
