//! ToR switch data-path microbenchmarks: DT admission + ECN marking per
//! packet, and the enqueue/dequeue cycle under steady state.

use ms_bench::micro::bench;
use ms_dcsim::{FlowId, Ns, Packet, SharedBufferSwitch, SwitchConfig};
use std::hint::black_box;

fn pkt(i: u64) -> Packet {
    Packet::data(FlowId(i % 64), 100, (i % 16) as u32, i * 1500, 1500)
}

fn bench_enqueue_dequeue() {
    let mut sw = SharedBufferSwitch::new(SwitchConfig::meta_tor(16));
    let mut i = 0u64;
    bench("switch_enq_deq_cycle", || {
        i += 1;
        let queue = (i % 16) as usize;
        let outcome = sw.try_enqueue(queue, black_box(pkt(i)), Ns(i));
        black_box(outcome);
        // Drain to keep occupancy steady so admission always runs the
        // full DT computation rather than the drop path.
        black_box(sw.dequeue(queue, Ns(i)));
    });
}

fn bench_enqueue_under_pressure() {
    // Near-full shared pool: admission decisions at the DT boundary.
    let mut sw = SharedBufferSwitch::new(SwitchConfig::meta_tor(16));
    // Pre-fill queue 0 to its DT fixpoint.
    let mut i = 0u64;
    loop {
        i += 1;
        if !sw.try_enqueue(0, pkt(i), Ns::ZERO).accepted() {
            break;
        }
    }
    bench("switch_enqueue_near_threshold", || {
        i += 1;
        let outcome = sw.try_enqueue(0, black_box(pkt(i)), Ns(i));
        if outcome.accepted() {
            black_box(sw.dequeue(0, Ns(i)));
        }
        black_box(outcome);
    });
}

fn main() {
    println!("=== switch data path ===");
    bench_enqueue_dequeue();
    bench_enqueue_under_pressure();
}
