//! §4.3 performance microbenchmarks: the Millisampler per-packet hot path
//! vs. a tcpdump-like header-copy baseline, plus the disabled fast path
//! and the fixed-cost counter-map read.
//!
//! Paper numbers (1.6 GHz Skylake): 88 ns full inspect, 84 ns without flow
//! counting, 7 ns disabled, 271 ns tcpdump, 4.3 ms map read. The claim
//! under test here is the *ordering and ratios*, not absolute nanoseconds.

use millisampler::{Direction, FilterState, PacketMeta, RunConfig, TcFilter};
use ms_bench::micro::bench;
use ms_dcsim::Ns;
use std::hint::black_box;

fn meta(flow: u64) -> PacketMeta {
    PacketMeta {
        direction: Direction::Ingress,
        bytes: 1500,
        ecn_ce: false,
        retx_bit: false,
        flow_hash: ms_sketch::mix64(flow),
    }
}

fn bench_record_enabled() {
    for (name, count_flows) in [
        ("sampler_record/all_features", true),
        ("sampler_record/no_flow_count", false),
    ] {
        let cfg = RunConfig {
            count_flows,
            ..RunConfig::one_ms()
        };
        let mut filter = TcFilter::new(&cfg, 4);
        filter.attach();
        filter.enable();
        let mut i = 0u64;
        bench(name, || {
            i += 1;
            let now = Ns(i % 1_999_000_000);
            filter.record((i % 4) as usize, now, black_box(&meta(i % 64)));
            if filter.state() != FilterState::Enabled {
                filter.enable();
            }
        });
    }
    {
        let mut filter = TcFilter::new(&RunConfig::one_ms(), 4);
        filter.attach();
        let mut i = 0u64;
        bench("sampler_record/disabled", || {
            i += 1;
            filter.record((i % 4) as usize, Ns(i), black_box(&meta(i)));
        });
    }
}

fn bench_pcap_baseline() {
    // tcpdump -s 100: copy a 100B header snapshot + timestamp into a ring.
    let mut ring = vec![0u8; 4 * 1024 * 1024];
    let header = [0xABu8; 100];
    let mut pos = 0usize;
    let mut i = 0u64;
    bench("pcap_like_copy", || {
        i += 1;
        if pos + 108 > ring.len() {
            pos = 0;
        }
        ring[pos..pos + 8].copy_from_slice(&i.to_le_bytes());
        ring[pos + 8..pos + 108].copy_from_slice(black_box(&header));
        pos += 108;
    });
    black_box(ring[0]);
}

fn bench_read_counters() {
    // §4.3: reading the counter map is a fixed cost regardless of how many
    // packets were counted. Benchmark the read against a fully-populated
    // filter and a nearly-empty one; the two should be close.
    for (name, packets) in [
        ("read_counters/empty_run", 1u64),
        ("read_counters/busy_run", 2_000_000u64),
    ] {
        let mut filter = TcFilter::new(&RunConfig::one_ms(), 4);
        filter.attach();
        filter.enable();
        for i in 0..packets {
            filter.record((i % 4) as usize, Ns(i % 1_999_000_000), &meta(i % 500));
        }
        bench(name, || black_box(filter.read(0)));
    }
}

fn main() {
    println!("=== sampler hot path (paper §4.3) ===");
    bench_record_enabled();
    bench_pcap_baseline();
    bench_read_counters();
}
