//! Flow-sketch microbenchmarks: insert and estimate costs for the 128-bit
//! deployment sketch and wider variants (ablation support).

use ms_bench::micro::bench;
use ms_sketch::{mix64, FlowSketch, MultiresBitmap};
use std::hint::black_box;

fn bench_insert() {
    {
        let mut s = FlowSketch::<2>::new();
        let mut i = 0u64;
        bench("sketch_insert/direct128", || {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
        black_box(s.ones());
    }
    {
        let mut s = FlowSketch::<4>::new();
        let mut i = 0u64;
        bench("sketch_insert/direct256", || {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
        black_box(s.ones());
    }
    {
        let mut s: MultiresBitmap<2, 8> = MultiresBitmap::new();
        let mut i = 0u64;
        bench("sketch_insert/multires128x8", || {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
    }
}

fn bench_estimate() {
    let mut s = FlowSketch::<2>::new();
    for i in 0..40 {
        s.insert(mix64(i));
    }
    bench("sketch_estimate128", || black_box(s.estimate()));
}

fn main() {
    println!("=== flow sketch ===");
    bench_insert();
    bench_estimate();
}
