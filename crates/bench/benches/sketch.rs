//! Flow-sketch microbenchmarks: insert and estimate costs for the 128-bit
//! deployment sketch and wider variants (ablation support).

use criterion::{criterion_group, criterion_main, Criterion};
use ms_sketch::{mix64, FlowSketch, MultiresBitmap};
use std::hint::black_box;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch_insert");
    g.bench_function("direct128", |b| {
        let mut s = FlowSketch::<2>::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
        black_box(s.ones());
    });
    g.bench_function("direct256", |b| {
        let mut s = FlowSketch::<4>::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
        black_box(s.ones());
    });
    g.bench_function("multires128x8", |b| {
        let mut s: MultiresBitmap<2, 8> = MultiresBitmap::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.insert(black_box(mix64(i % 256)));
        });
    });
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut s = FlowSketch::<2>::new();
    for i in 0..40 {
        s.insert(mix64(i));
    }
    c.bench_function("sketch_estimate128", |b| {
        b.iter(|| black_box(s.estimate()));
    });
}

criterion_group!(benches, bench_insert, bench_estimate);
criterion_main!(benches);
