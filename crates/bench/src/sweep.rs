//! Region-scale sweeps: every rack × selected hours, in parallel.

use ms_analysis::dataset::RackHourObservation;
use ms_analysis::{analyze_run, RackCategory, RunOutcome};
use ms_workload::placement::{build_region, RackClass, RegionKind, RegionSpec};
use ms_workload::scenario::{rack_sim_for, ScenarioConfig};
use std::collections::BTreeSet;

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Racks per region.
    pub racks: usize,
    /// Servers per rack.
    pub servers: usize,
    /// Hours of day to run (e.g. `vec![7]` for the busy hour, `0..24` for
    /// diurnal figures).
    pub hours: Vec<usize>,
    /// Scenario knobs (window length, MSS, warm-up).
    pub scenario: ScenarioConfig,
    /// Experiment seed.
    pub seed: u64,
    /// Loss-association slack in buckets (§8 methodology; 5 × 1 ms covers
    /// the 4 ms min-RTO).
    pub loss_slack: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            racks: 60,
            servers: 24,
            hours: vec![7],
            scenario: ScenarioConfig::default(),
            seed: 42,
            loss_slack: 5,
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// Effective worker thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// Server link rate used by the analyses.
    pub fn link_bps(&self) -> ms_workload::Bps {
        ms_workload::Bps(12_500_000_000)
    }
}

/// The outcome of sweeping one region.
#[derive(Debug, Clone)]
pub struct RegionData {
    /// Which region archetype.
    pub kind: RegionKind,
    /// The placement (for Figs. 10–11).
    pub spec: RegionSpec,
    /// One observation per `(rack, hour)` cell, sorted by `(rack, hour)`.
    pub obs: Vec<RackHourObservation>,
    /// The sweep configuration used.
    pub config: SweepConfig,
}

impl RegionData {
    /// Observations for one hour.
    pub fn at_hour(&self, hour: usize) -> impl Iterator<Item = &RackHourObservation> {
        self.obs.iter().filter(move |o| o.hour == hour)
    }

    /// Busy-hour (hour 7) average contention per rack, the categorization
    /// input of §7.1. Racks with no busy-hour observation are skipped.
    pub fn busy_hour_avg_contention(&self) -> Vec<(u32, f64)> {
        self.at_hour(7)
            .map(|o| (o.rack_id, o.analysis.contention_stats.avg))
            .collect()
    }

    /// RegA-High rack ids (top 20 % by busy-hour average contention).
    /// Meaningless for RegB (the paper does not split RegB).
    pub fn high_contention_racks(&self) -> BTreeSet<u32> {
        ms_analysis::dataset::categorize_rega_racks(&self.busy_hour_avg_contention(), 0.2)
    }

    /// The §8 category of a rack, given the categorization set.
    pub fn category_of(&self, rack_id: u32, high: &BTreeSet<u32>) -> RackCategory {
        match self.kind {
            RegionKind::RegB => RackCategory::RegB,
            RegionKind::RegA => {
                if high.contains(&rack_id) {
                    RackCategory::RegAHigh
                } else {
                    RackCategory::RegATypical
                }
            }
        }
    }

    /// Ground-truth placement class of a rack (for validating that the
    /// contention-based categorization recovers the ML-dense set).
    pub fn placement_class(&self, rack_id: u32) -> RackClass {
        self.spec.racks[rack_id as usize].class
    }
}

/// Sweeps a region: simulates every `(rack, hour)` cell and analyzes the
/// resulting rack runs. Parallel over cells; the output order (and every
/// value in it) is independent of thread count.
pub fn sweep_region(kind: RegionKind, cfg: &SweepConfig) -> RegionData {
    let spec = build_region(kind, cfg.racks, cfg.servers, cfg.seed);
    let link = cfg.link_bps();

    let mut cells: Vec<(u32, usize)> = Vec::new();
    for rack in 0..cfg.racks as u32 {
        for &hour in &cfg.hours {
            cells.push((rack, hour));
        }
    }

    let (tx, rx) = std::sync::mpsc::channel::<RackHourObservation>();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = cfg.effective_threads();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cells = &cells;
            let spec = &spec;
            let next = &next;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let (rack_id, hour) = cells[i];
                    let rack_spec = &spec.racks[rack_id as usize];
                    let mut sim = rack_sim_for(rack_spec, &spec.diurnal, hour, 0, &cfg.scenario);
                    let report = sim.run_sync_window(rack_id);
                    let analysis = match &report.rack_run {
                        Some(run) => analyze_run(run, link, cfg.loss_slack),
                        None => {
                            // A silent rack: an empty analysis.
                            let empty = millisampler::AlignedRackRun {
                                rack: rack_id,
                                start: ms_dcsim::Ns::ZERO,
                                interval: cfg.scenario.interval,
                                servers: Vec::new(),
                            };
                            analyze_run(&empty, link, cfg.loss_slack)
                        }
                    };
                    let outcome = RunOutcome::from_analysis(
                        &analysis,
                        report.switch_ingress_bytes,
                        report.switch_discard_bytes,
                        report.flows_started,
                        report.conns_completed,
                        report.events,
                    );
                    let _ = tx.send(RackHourObservation {
                        rack_id,
                        hour,
                        analysis,
                        outcome,
                    });
                }
            });
        }
        drop(tx);
    });

    let mut obs: Vec<RackHourObservation> = rx.into_iter().collect();
    obs.sort_by_key(|o| (o.rack_id, o.hour));

    RegionData {
        kind,
        spec,
        obs,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            racks: 4,
            servers: 8,
            hours: vec![7],
            scenario: ScenarioConfig {
                buckets: 100,
                warmup: ms_dcsim::Ns::from_millis(20),
                ..ScenarioConfig::default()
            },
            seed: 7,
            loss_slack: 5,
            threads: 2,
        }
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let data = sweep_region(RegionKind::RegA, &tiny_cfg());
        assert_eq!(data.obs.len(), 4);
        let ids: Vec<u32> = data.obs.iter().map(|o| o.rack_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(data.obs.iter().all(|o| o.hour == 7));
    }

    #[test]
    fn sweep_deterministic_across_thread_counts() {
        let one = sweep_region(
            RegionKind::RegA,
            &SweepConfig {
                threads: 1,
                ..tiny_cfg()
            },
        );
        let four = sweep_region(
            RegionKind::RegA,
            &SweepConfig {
                threads: 4,
                ..tiny_cfg()
            },
        );
        assert_eq!(one.obs.len(), four.obs.len());
        for (a, b) in one.obs.iter().zip(&four.obs) {
            assert_eq!(a.rack_id, b.rack_id);
            assert_eq!(a.analysis.total_in_bytes, b.analysis.total_in_bytes);
            assert_eq!(a.analysis.bursts, b.analysis.bursts);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn traffic_actually_flows_in_sweeps() {
        let data = sweep_region(RegionKind::RegB, &tiny_cfg());
        let total: u64 = data.obs.iter().map(|o| o.analysis.total_in_bytes).sum();
        assert!(total > 0, "sweep produced no traffic");
    }
}
