//! Row and CSV output for the experiment harness.
//!
//! Every `repro` subcommand prints the paper-style rows to stdout *and*
//! writes the same series to `results/<name>.csv` so the exhibits can be
//! re-plotted with any tool.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple CSV/row sink for one exhibit.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report for exhibit `name` (e.g. `"fig9"`).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints an aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                s.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("  {}", s.trim_end());
        };
        line(&self.header);
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes `results/<name>.csv` under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Prints the table and writes the CSV, reporting the path.
    pub fn finish(&self, dir: &Path) {
        self.print();
        match self.write_csv(dir) {
            Ok(path) => println!("  -> wrote {}", path.display()),
            Err(e) => eprintln!("  !! could not write CSV: {e}"),
        }
    }
}

/// Formats a float with 3 significant-ish decimals for table cells.
pub fn f3(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("ms_bench_report_test");
        let mut r = Report::new("unit", &["a", "b"]);
        r.row(&["1".into(), "x".into()]);
        r.row(&["2".into(), "y".into()]);
        let path = r.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,x\n2,y\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut r = Report::new("unit", &["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(f64::NAN), "-");
        assert_eq!(pct(12.345), "12.35%");
        assert_eq!(pct(f64::NAN), "-");
    }
}
