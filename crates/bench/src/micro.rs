//! A minimal wall-clock microbenchmark harness.
//!
//! The workspace builds fully offline, so instead of Criterion the bench
//! targets use this ~100-line harness: double the batch size until one
//! batch runs long enough to measure, time a few batches, and report the
//! best (least-noise) nanoseconds per iteration. Good enough for the §4.3
//! claims under test, which are *orderings and ratios* (hot path vs.
//! tcpdump-like copy vs. disabled path), not absolute nanoseconds.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum duration one timed batch must reach before we trust it.
const MIN_BATCH: Duration = Duration::from_millis(20);
/// Timed batches per benchmark; the fastest is reported.
const BATCHES: usize = 5;

/// Outcome of one microbenchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Best observed cost of one iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed batch after calibration.
    pub iters: u64,
}

impl BenchResult {
    /// One aligned human-readable row.
    pub fn row(&self) -> String {
        format!(
            "{:<36} {:>14.1} ns/iter   ({} iters/batch)",
            self.name, self.ns_per_iter, self.iters
        )
    }
}

/// Times `f`, printing and returning the result.
///
/// `f` may carry mutable state across iterations (counters, filters,
/// queues); it is called back-to-back inside each timed batch.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    // Calibrate: grow the batch until it takes at least MIN_BATCH.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= MIN_BATCH {
            break;
        }
        // Grow toward the target with a 2x cap margin against timer noise.
        let grow = if dt.as_nanos() == 0 {
            16
        } else {
            ((MIN_BATCH.as_nanos() * 2 / dt.as_nanos()) as u64).clamp(2, 64)
        };
        iters = iters.saturating_mul(grow);
    }

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }

    let result = BenchResult {
        name: name.to_string(),
        ns_per_iter: best,
        iters,
    };
    println!("{}", result.row());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let mut x = 0u64;
        let r = bench("noop_add", || {
            x = x.wrapping_add(1);
            x
        });
        assert!(r.ns_per_iter > 0.0);
        assert!(r.iters >= 1);
    }

    #[test]
    fn row_is_readable() {
        let r = BenchResult {
            name: "demo".into(),
            ns_per_iter: 12.5,
            iters: 1000,
        };
        assert!(r.row().contains("demo"));
        assert!(r.row().contains("12.5"));
    }
}
