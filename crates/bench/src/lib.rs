//! # ms-bench — the experiment harness
//!
//! Shared machinery for the `repro` binary (one subcommand per paper table
//! and figure — see `DESIGN.md` §3 for the index) and for the
//! microbenchmarks:
//!
//! * [`sweep`] — runs whole-region SyncMillisampler sweeps (every rack ×
//!   selected hours), in parallel across std scoped worker threads,
//!   deterministically regardless of thread count.
//! * [`report`] — row/CSV formatting helpers so every experiment both
//!   prints the paper-style series and leaves a machine-readable file
//!   under `results/`.
//! * [`micro`] — the dependency-free wall-clock harness behind the
//!   `benches/` targets (the workspace builds offline, so no Criterion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod report;
pub mod sweep;

pub use sweep::{sweep_region, RegionData, SweepConfig};
