//! Fig. 1 (DT queue-share curves) and the §4.5 validation experiments
//! (Figs. 3–5).

use crate::Ctx;
use millisampler::RunConfig;
use ms_analysis::contention::{contention_series, queue_share};
use ms_bench::report::{f3, Report};
use ms_dcsim::Ns;
use ms_workload::placement::RegionKind;
use ms_workload::tools::{schedule_burst_requests, schedule_multicast_validation};
use ms_workload::{Bps, ScenarioBuilder};

/// Fig. 1: `T(S) = α/(1+αS)` for α ∈ {0.25, 0.5, 1, 2, 4}, S = 1..10.
pub fn fig1(ctx: &mut Ctx) {
    let alphas = [0.25, 0.5, 1.0, 2.0, 4.0];
    let mut r = Report::new("fig1", &["S", "a=0.25", "a=0.5", "a=1", "a=2", "a=4"]);
    for s in 1..=10usize {
        let mut row = vec![s.to_string()];
        for a in alphas {
            row.push(f3(queue_share(a, s)));
        }
        r.row(&row);
    }
    r.finish(&ctx.opts.out);
    println!("  paper anchors: a=1,S=1 -> 0.5; a=1,S=2 -> 0.333; a=2,S=1 -> 0.667 (§2.1)");
}

/// A paper-scale (1 ms × 2000) idle rack for the validation experiments,
/// with 1500 B MSS like the production fleet.
fn validation_scenario(servers: usize, seed: u64) -> ScenarioBuilder {
    let one_ms = RunConfig::one_ms();
    let mut b = ScenarioBuilder::new(servers, seed);
    b.interval(one_ms.interval)
        .buckets(one_ms.buckets)
        .count_flows(one_ms.count_flows)
        .warmup(Ns::from_millis(20));
    b
}

/// Fig. 3: multicast bursts to 8 idle servers arrive in the same sample on
/// every host — SyncMillisampler collection is synchronized.
pub fn fig3(ctx: &mut Ctx) {
    let mut scenario = validation_scenario(8, ctx.opts.seed);
    let servers: Vec<usize> = (0..8).collect();
    // Bursts every 100ms over the 2s window; rate limited (multicast is
    // rate limited in production, §4.5) so the burst spans several ms.
    schedule_multicast_validation(
        &mut scenario,
        700,
        &servers,
        Ns::from_millis(40),
        Ns::from_millis(100),
        19,
        800,
        1500,
        Bps(2_000_000_000),
    );
    let report = scenario.build().run_sync_window(0);
    let run = report.rack_run.expect("validation rack produced data");

    // Per burst occurrence: the bucket index at which each server's rate
    // first exceeds 0.5 Gbps, and the spread across servers.
    let threshold_bytes = 62_500; // 0.5 Gbps over 1ms
    let mut r = Report::new(
        "fig3",
        &["burst", "first_bucket_min", "first_bucket_max", "spread_ms"],
    );
    let n = run.len();
    let mut cursor = 0usize;
    let mut burst_no = 0;
    while cursor < n {
        // Find the next bucket where ANY server is above threshold.
        let Some(start) =
            (cursor..n).find(|&i| run.servers.iter().any(|s| s.in_bytes[i] > threshold_bytes))
        else {
            break;
        };
        // Each server's first above-threshold bucket within start..start+10.
        let window_end = (start + 10).min(n);
        let firsts: Vec<i64> = run
            .servers
            .iter()
            .filter_map(|s| {
                (start.saturating_sub(1)..window_end)
                    .find(|&i| s.in_bytes[i] > threshold_bytes)
                    .map(|i| i as i64)
            })
            .collect();
        if firsts.len() == run.servers.len() {
            burst_no += 1;
            let min = *firsts.iter().min().unwrap();
            let max = *firsts.iter().max().unwrap();
            r.row(&[
                burst_no.to_string(),
                min.to_string(),
                max.to_string(),
                (max - min).to_string(),
            ]);
        }
        cursor = window_end + 40;
    }
    r.finish(&ctx.opts.out);
    println!("  expectation: spread <= 1 sample on every burst (paper Fig. 3: lines overlap)");

    // Also dump the per-server link-rate series for plotting.
    let mut series = Report::new("fig3_series", &["sample_ms", "server", "gbps"]);
    for (sid, s) in run.servers.iter().enumerate() {
        for (i, &b) in s.in_bytes.iter().enumerate() {
            if b > 0 {
                series.row(&[
                    i.to_string(),
                    sid.to_string(),
                    f3(b as f64 * 8.0 / 1e6), // bytes/ms -> Gbps
                ]);
            }
        }
    }
    let _ = series.write_csv(&ctx.opts.out);
}

/// Fig. 4: five clients in one rack receive synchronized 1.8 MB bursts
/// from five senders; post-analysis identifies 5 simultaneously bursty
/// servers.
pub fn fig4(ctx: &mut Ctx) {
    let mut scenario = validation_scenario(8, ctx.opts.seed ^ 4);
    // Paper: 1.8MB bursts ≈ 3ms, every 100ms, to 5 clients.
    for client in 0..5 {
        schedule_burst_requests(
            &mut scenario,
            client,
            Ns::from_millis(40),
            Ns::from_millis(100),
            19,
            1_800_000,
            4,
        );
    }
    let report = scenario.build().run_sync_window(0);
    let run = report.rack_run.expect("burst traffic sampled");
    let contention = contention_series(&run, Bps(12_500_000_000));

    let mut r = Report::new("fig4", &["sample_ms", "bursty_servers"]);
    for (i, &c) in contention.iter().enumerate() {
        if c > 0 {
            r.row(&[i.to_string(), c.to_string()]);
        }
    }
    let peak = contention.iter().copied().max().unwrap_or(0);
    let peaks_at_5 = contention.iter().filter(|&&c| c == 5).count();
    r.finish(&ctx.opts.out);
    println!("  peak simultaneous bursty servers: {peak} (expected 5)");
    println!("  samples at contention 5: {peaks_at_5} (paper: ~3ms per burst x 19 bursts)");
}

/// Fig. 5: deep dive into a low-contention and a high-contention run from
/// the busy-hour RegA sweep.
pub fn fig5(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.busy(RegionKind::RegA);
    // Lowest nonzero and highest average contention runs.
    let mut runs: Vec<_> = data
        .obs
        .iter()
        .filter(|o| o.analysis.contention_stats.avg > 0.0)
        .collect();
    runs.sort_by(|a, b| {
        a.analysis
            .contention_stats
            .avg
            .partial_cmp(&b.analysis.contention_stats.avg)
            .unwrap()
    });
    if runs.is_empty() {
        println!("  no active runs in sweep — increase --racks or load");
        return;
    }
    let low = runs[0];
    let high = runs[runs.len() - 1];

    let mut r = Report::new(
        "fig5",
        &["run", "rack", "avg_contention", "p90", "max", "bursts"],
    );
    for (name, o) in [("low", low), ("high", high)] {
        let cs = &o.analysis.contention_stats;
        r.row(&[
            name.to_string(),
            o.rack_id.to_string(),
            f3(cs.avg),
            cs.p90.to_string(),
            cs.max.to_string(),
            o.analysis.bursts.len().to_string(),
        ]);
    }
    r.finish(&out);

    // Time series of both runs for plotting (the Fig. 5 lower panels).
    let mut ts = Report::new("fig5_series", &["run", "sample_ms", "contention"]);
    for (name, o) in [("low", low), ("high", high)] {
        for (i, &c) in o.analysis.contention.iter().enumerate() {
            ts.row(&[name.to_string(), i.to_string(), c.to_string()]);
        }
    }
    let _ = ts.write_csv(&out);
    // And the burst raster (Fig. 5 upper panels).
    let mut raster = Report::new("fig5_raster", &["run", "server", "start_ms", "len_ms"]);
    for (name, o) in [("low", low), ("high", high)] {
        for b in &o.analysis.bursts {
            raster.row(&[
                name.to_string(),
                b.burst.server.to_string(),
                b.burst.start.to_string(),
                b.burst.len.to_string(),
            ]);
        }
    }
    let _ = raster.write_csv(&out);
    println!(
        "  paper: low run varies 0-3, high run varies 3-12; measured low avg {} / high avg {}",
        f3(low.analysis.contention_stats.avg),
        f3(high.analysis.contention_stats.avg)
    );
}
