//! §7: contention across racks, across the day, and within runs
//! (Figs. 9–15).

use crate::Ctx;
use ms_analysis::contention::{queue_share, share_drop};
use ms_analysis::stats::{bucketed, pearson, spearman, BoxStats, Cdf};
use ms_bench::report::{f3, pct, Report};
use ms_workload::placement::{RackClass, RegionKind};

/// Fig. 9: CDF of busy-hour average rack contention, RegA vs RegB.
pub fn fig9(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let rega: Vec<f64> = ctx
        .busy(RegionKind::RegA)
        .obs
        .iter()
        .map(|o| o.analysis.contention_stats.avg)
        .collect();
    let regb: Vec<f64> = ctx
        .busy(RegionKind::RegB)
        .obs
        .iter()
        .map(|o| o.analysis.contention_stats.avg)
        .collect();
    let (ca, cb) = (Cdf::new(rega), Cdf::new(regb));
    let mut r = Report::new(
        "fig9",
        &["pct_of_racks", "rega_avg_contention", "regb_avg_contention"],
    );
    for i in 1..=25 {
        let q = i as f64 / 25.0;
        r.row(&[f3(100.0 * q), f3(ca.quantile(q)), f3(cb.quantile(q))]);
    }
    r.finish(&out);
    println!(
        "  RegA p75 {} (paper: 75% of racks < 2.2); RegA p80+ {} (paper: top 20% > 7.5)",
        f3(ca.quantile(0.75)),
        f3(ca.quantile(0.85)),
    );
    println!(
        "  bimodality check: RegA p80/p75 ratio {} (paper ~3.4x); RegB median {} > RegA median {}",
        f3(ca.quantile(0.85) / ca.quantile(0.75).max(1e-9)),
        f3(cb.median()),
        f3(ca.median()),
    );
}

/// Fig. 10: distinct tasks per rack, per contention category.
pub fn fig10(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let rega = ctx.busy(RegionKind::RegA);
    let high = rega.high_contention_racks();
    let mut typical = Vec::new();
    let mut high_tasks = Vec::new();
    let mut recovered = 0usize;
    for rack in &rega.spec.racks {
        let t = rack.distinct_tasks() as f64;
        if high.contains(&rack.rack_id) {
            high_tasks.push(t);
            if rack.class == RackClass::MlDense {
                recovered += 1;
            }
        } else {
            typical.push(t);
        }
    }
    let regb: Vec<f64> = ctx
        .busy(RegionKind::RegB)
        .spec
        .racks
        .iter()
        .map(|r| r.distinct_tasks() as f64)
        .collect();
    let (ct, ch, cb) = (Cdf::new(typical), Cdf::new(high_tasks), Cdf::new(regb));
    let mut r = Report::new(
        "fig10",
        &[
            "pct_of_racks",
            "rega_typical_tasks",
            "rega_high_tasks",
            "regb_tasks",
        ],
    );
    for i in 1..=20 {
        let q = i as f64 / 20.0;
        r.row(&[
            f3(100.0 * q),
            f3(ct.quantile(q)),
            f3(ch.quantile(q)),
            f3(cb.quantile(q)),
        ]);
    }
    r.finish(&out);
    println!(
        "  medians: RegA-High {} (paper 8), RegA-Typical {} (paper 14), RegB {} (paper 15)",
        f3(ch.median()),
        f3(ct.median()),
        f3(cb.median())
    );
    println!(
        "  contention categorization recovered {recovered}/{} ML-dense racks",
        ch.len()
    );
}

/// Fig. 11: dominant-task share, racks sorted by busy-hour contention.
pub fn fig11(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let mut r = Report::new(
        "fig11",
        &["region", "rack_rank", "avg_contention", "dominant_task_pct"],
    );
    for kind in [RegionKind::RegA, RegionKind::RegB] {
        let data = ctx.busy(kind);
        let mut rows: Vec<(f64, f64)> = data
            .obs
            .iter()
            .map(|o| {
                (
                    o.analysis.contention_stats.avg,
                    data.spec.racks[o.rack_id as usize].dominant_task_share(),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (rank, (avg, share)) in rows.iter().enumerate() {
            r.row(&[format!("{kind:?}"), rank.to_string(), f3(*avg), f3(*share)]);
        }
    }
    r.finish(&out);
    println!("  expectation: dominant share rises with contention rank;");
    println!("  RegA right-end (high contention) racks at 60-100% (paper Fig. 11)");
}

/// Fig. 12: per-rack mean/min/max of run-average contention across the day.
pub fn fig12(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let mut r = Report::new("fig12", &["region", "rack_rank", "mean", "min", "max"]);
    let mut summary: Vec<String> = Vec::new();
    for kind in [RegionKind::RegA, RegionKind::RegB] {
        let data = ctx.daily(kind);
        let mut per_rack: Vec<(f64, f64, f64)> = Vec::new();
        for rack in 0..data.config.racks as u32 {
            let avgs: Vec<f64> = data
                .obs
                .iter()
                .filter(|o| o.rack_id == rack)
                .map(|o| o.analysis.contention_stats.avg)
                .collect();
            if avgs.is_empty() {
                continue;
            }
            let mean = avgs.iter().sum::<f64>() / avgs.len() as f64;
            let min = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = avgs.iter().cloned().fold(0.0, f64::max);
            per_rack.push((mean, min, max));
        }
        per_rack.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (rank, (mean, min, max)) in per_rack.iter().enumerate() {
            r.row(&[
                format!("{kind:?}"),
                rank.to_string(),
                f3(*mean),
                f3(*min),
                f3(*max),
            ]);
        }
        // Persistence check (§7.2): average per-rack range.
        let avg_range: f64 =
            per_rack.iter().map(|(_, lo, hi)| hi - lo).sum::<f64>() / per_rack.len().max(1) as f64;
        summary.push(format!("{kind:?} mean min-max range {}", f3(avg_range)));
    }
    r.finish(&out);
    println!("  {}", summary.join("; "));
    println!("  paper: RegA classes well separated & persistent; RegB ranges overlap more");
}

/// Fig. 13: diurnal box plots of run-average contention, RegA-High & RegB.
pub fn fig13(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let high = {
        let rega = ctx.daily(RegionKind::RegA);
        rega.high_contention_racks()
    };
    let mut r = Report::new(
        "fig13",
        &["group", "hour", "p25", "median", "p75", "p90", "mean", "n"],
    );
    let mut lifts: Vec<String> = Vec::new();
    for (name, kind, filter_high) in [
        ("RegA-High", RegionKind::RegA, true),
        ("RegB", RegionKind::RegB, false),
    ] {
        let data = ctx.daily(kind);
        let mut busy_vals = Vec::new();
        let mut off_vals = Vec::new();
        let hours: Vec<usize> = {
            let mut hs: Vec<usize> = data.obs.iter().map(|o| o.hour).collect();
            hs.sort_unstable();
            hs.dedup();
            hs
        };
        for &hour in &hours {
            let vals: Vec<f64> = data
                .at_hour(hour)
                .filter(|o| !filter_high || high.contains(&o.rack_id))
                .map(|o| o.analysis.contention_stats.avg)
                .collect();
            if (4..=10).contains(&hour) {
                busy_vals.extend(vals.iter());
            } else {
                off_vals.extend(vals.iter());
            }
            if let Some(b) = BoxStats::from_values(vals) {
                r.row(&[
                    name.to_string(),
                    hour.to_string(),
                    f3(b.p25),
                    f3(b.median),
                    f3(b.p75),
                    f3(b.p90),
                    f3(b.mean),
                    b.n.to_string(),
                ]);
            }
        }
        let busy_mean = busy_vals.iter().sum::<f64>() / busy_vals.len().max(1) as f64;
        let off_mean = off_vals.iter().sum::<f64>() / off_vals.len().max(1) as f64;
        lifts.push(format!(
            "{name} busy-hours lift {}",
            pct(100.0 * (busy_mean / off_mean - 1.0))
        ));
    }
    r.finish(&out);
    println!("  {}", lifts.join("; "));
    println!("  paper: RegA-High +27.6% during hours 4-10; RegB also diurnal");
}

/// Fig. 14: rack 1-minute ingress volume vs. average contention (RegA).
pub fn fig14(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.daily(RegionKind::RegA);
    let window_s =
        data.config.scenario.interval.as_secs_f64() * data.config.scenario.buckets as f64;
    // Scale window ingress to a 1-minute equivalent, like the production
    // counters ("switches only support ... 1 minute granularity", §7.2).
    let pairs: Vec<(f64, f64)> = data
        .obs
        .iter()
        .map(|o| {
            let per_min_gb = o.outcome.switch_ingress_bytes as f64 * (60.0 / window_s) / 1e9;
            (per_min_gb, o.analysis.contention_stats.avg)
        })
        .collect();
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rho = pearson(&xs, &ys);
    let mut r = Report::new(
        "fig14",
        &["ingress_gb_per_min", "p25", "median", "p75", "p90", "n"],
    );
    for (center, b) in bucketed(&pairs, 10.0) {
        r.row(&[
            f3(center),
            f3(b.p25),
            f3(b.median),
            f3(b.p75),
            f3(b.p90),
            b.n.to_string(),
        ]);
    }
    r.finish(&out);
    println!(
        "  Pearson(ingress, avg contention) = {}, Spearman = {} (paper: clear positive correlation)",
        f3(rho),
        f3(spearman(&xs, &ys))
    );
}

/// Fig. 15: within-run contention variation and the buffer-share drop.
pub fn fig15(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.daily(RegionKind::RegA);
    // Exclude runs whose p90 contention is zero (paper excludes 6.2%).
    let mut runs: Vec<(u32, u32)> = data
        .obs
        .iter()
        .filter(|o| o.analysis.contention_stats.p90 > 0)
        .map(|o| {
            (
                o.analysis.contention_stats.min_active.unwrap_or(0),
                o.analysis.contention_stats.p90,
            )
        })
        .collect();
    let excluded = data.obs.len() - runs.len();
    runs.sort_by_key(|&(min, p90)| (min, p90));

    let mut r = Report::new(
        "fig15",
        &[
            "run_rank",
            "min_contention",
            "p90_contention",
            "share_min",
            "share_p90",
            "drop_pct",
        ],
    );
    let mut drops = Vec::new();
    for (rank, &(min, p90)) in runs.iter().enumerate() {
        let drop = share_drop(1.0, min.max(1), p90.max(1));
        drops.push(100.0 * drop);
        // Print every run to CSV; sample ranks to stdout-sized table.
        r.row(&[
            rank.to_string(),
            min.to_string(),
            p90.to_string(),
            f3(queue_share(1.0, min.max(1) as usize)),
            f3(queue_share(1.0, p90.max(1) as usize)),
            f3(100.0 * drop),
        ]);
    }
    let _ = r.write_csv(&out);
    let cdf = Cdf::new(drops);
    println!(
        "  runs {} (excluded p90=0: {excluded}, paper 6.2%)",
        runs.len()
    );
    println!(
        "  buffer share drop: median {} (paper 33.3%), fraction >=70%: {} (paper 15%)",
        pct(cdf.median()),
        f3(1.0 - cdf.fraction_at_or_below(70.0 - 1e-9))
    );
}
