//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p ms-bench --bin repro --release -- [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!   fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!   fig14 fig15 fig16 fig17 fig18 fig19 table1 table2 perf all
//!
//! OPTIONS
//!   --racks N        racks per region                 (default 60)
//!   --servers N      servers per rack                 (default 24)
//!   --buckets N      1ms samples per run              (default 500)
//!   --hour-step N    simulate every Nth hour of day   (default 2)
//!   --seed N         experiment seed                  (default 42)
//!   --threads N      worker threads                   (default: all cores)
//!   --quick          tiny sweep for smoke-testing
//!   --paper-scale    2000-bucket (2s) windows, 1500B MSS
//!   --out DIR        CSV output directory             (default results/)
//! ```
//!
//! Each experiment prints the paper-style rows and writes
//! `<out>/<exhibit>.csv`. See `EXPERIMENTS.md` for paper-vs-measured notes.

mod exp_bursts;
mod exp_contention;
mod exp_loss;
mod exp_validation;
mod perf;

use ms_bench::{sweep_region, RegionData, SweepConfig};
use ms_workload::placement::RegionKind;
use ms_workload::scenario::ScenarioConfig;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Opts {
    pub racks: usize,
    pub servers: usize,
    pub buckets: usize,
    pub hour_step: usize,
    pub seed: u64,
    pub threads: usize,
    pub mss: u32,
    pub out: PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            racks: 40,
            servers: 28,
            buckets: 400,
            hour_step: 3,
            seed: 42,
            threads: 0,
            mss: 4500,
            out: PathBuf::from("results"),
        }
    }
}

impl Opts {
    fn scenario(&self) -> ScenarioConfig {
        ScenarioConfig {
            buckets: self.buckets,
            mss: self.mss,
            ..ScenarioConfig::default()
        }
    }

    fn sweep_config(&self, hours: Vec<usize>) -> SweepConfig {
        SweepConfig {
            racks: self.racks,
            servers: self.servers,
            hours,
            scenario: self.scenario(),
            seed: self.seed,
            loss_slack: 5,
            threads: self.threads,
        }
    }

    fn daily_hours(&self) -> Vec<usize> {
        (0..24).step_by(self.hour_step.max(1)).collect()
    }
}

/// Lazily computed sweeps, shared across the experiments of one invocation.
pub struct Ctx {
    pub opts: Opts,
    rega_busy: Option<RegionData>,
    rega_daily: Option<RegionData>,
    regb_busy: Option<RegionData>,
    regb_daily: Option<RegionData>,
}

impl Ctx {
    fn new(opts: Opts) -> Self {
        Ctx {
            opts,
            rega_busy: None,
            rega_daily: None,
            regb_busy: None,
            regb_daily: None,
        }
    }

    /// Busy-hour (hour 7) sweep. Reuses the daily sweep when present.
    pub fn busy(&mut self, kind: RegionKind) -> &RegionData {
        let (daily, busy) = match kind {
            RegionKind::RegA => (&self.rega_daily, &mut self.rega_busy),
            RegionKind::RegB => (&self.regb_daily, &mut self.regb_busy),
        };
        if busy.is_none() {
            if let Some(d) = daily {
                // Derive the busy view from the daily sweep.
                let mut view = d.clone();
                view.obs.retain(|o| o.hour == 7);
                *busy = Some(view);
            } else {
                eprintln!("[sweep] {kind:?} busy hour ({} racks)...", self.opts.racks);
                let cfg = self.opts.sweep_config(vec![7]);
                *busy = Some(sweep_region(kind, &cfg));
            }
        }
        busy.as_ref().unwrap()
    }

    /// Full-day sweep (every `hour_step`-th hour; always includes hour 7).
    pub fn daily(&mut self, kind: RegionKind) -> &RegionData {
        let slot = match kind {
            RegionKind::RegA => &mut self.rega_daily,
            RegionKind::RegB => &mut self.regb_daily,
        };
        if slot.is_none() {
            let mut hours = self.opts.daily_hours();
            if !hours.contains(&7) {
                hours.push(7);
                hours.sort_unstable();
            }
            eprintln!(
                "[sweep] {kind:?} daily ({} racks x {} hours)...",
                self.opts.racks,
                hours.len()
            );
            let cfg = self.opts.sweep_config(hours);
            *slot = Some(sweep_region(kind, &cfg));
        }
        slot.as_ref().unwrap()
    }
}

const ALL: &[&str] = &[
    "fig1", "fig3", "fig4", "fig5", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "table2", "fig16", "fig17", "fig18", "fig19", "perf",
];

fn run_experiment(name: &str, ctx: &mut Ctx) {
    println!("\n=== {name} ===");
    let t0 = std::time::Instant::now();
    match name {
        "fig1" => exp_validation::fig1(ctx),
        "fig3" => exp_validation::fig3(ctx),
        "fig4" => exp_validation::fig4(ctx),
        "fig5" => exp_validation::fig5(ctx),
        "table1" => exp_bursts::table1(ctx),
        "fig6" => exp_bursts::fig6(ctx),
        "fig7" => exp_bursts::fig7(ctx),
        "fig8" => exp_bursts::fig8(ctx),
        "fig9" => exp_contention::fig9(ctx),
        "fig10" => exp_contention::fig10(ctx),
        "fig11" => exp_contention::fig11(ctx),
        "fig12" => exp_contention::fig12(ctx),
        "fig13" => exp_contention::fig13(ctx),
        "fig14" => exp_contention::fig14(ctx),
        "fig15" => exp_contention::fig15(ctx),
        "table2" => exp_loss::table2(ctx),
        "fig16" => exp_loss::fig16(ctx),
        "fig17" => exp_loss::fig17(ctx),
        "fig18" => exp_loss::fig18(ctx),
        "fig19" => exp_loss::fig19(ctx),
        "perf" => perf::perf(ctx),
        other => {
            eprintln!("unknown experiment '{other}' (try: {})", ALL.join(" "));
            std::process::exit(2);
        }
    }
    eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
}

fn main() {
    let mut opts = Opts::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next_num = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--racks" => opts.racks = next_num("--racks") as usize,
            "--servers" => opts.servers = next_num("--servers") as usize,
            "--buckets" => opts.buckets = next_num("--buckets") as usize,
            "--hour-step" => opts.hour_step = next_num("--hour-step") as usize,
            "--seed" => opts.seed = next_num("--seed"),
            "--threads" => opts.threads = next_num("--threads") as usize,
            "--quick" => {
                opts.racks = 12;
                opts.servers = 16;
                opts.buckets = 250;
                opts.hour_step = 6;
            }
            "--paper-scale" => {
                opts.buckets = 2000;
                opts.mss = 1500;
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("repro — regenerate the paper's tables and figures");
                println!("experiments: {} all", ALL.join(" "));
                return;
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("no experiment given; try `repro --quick all` or `repro fig9`");
        std::process::exit(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut ctx = Ctx::new(opts);
    for exp in &experiments {
        run_experiment(exp, &mut ctx);
    }
}
