//! Table 1 and the §6 burst characterization (Figs. 6–8).

use crate::Ctx;
use ms_analysis::dataset::DatasetSummary;
use ms_analysis::stats::Cdf;
use ms_bench::report::{f3, pct, Report};
use ms_bench::RegionData;
use ms_workload::placement::RegionKind;

/// Table 1: dataset summary per region over the simulated day.
pub fn table1(ctx: &mut Ctx) {
    let buckets = ctx.opts.buckets;
    let mut r = Report::new(
        "table1",
        &[
            "region",
            "runs",
            "server_runs",
            "bursty_server_runs",
            "bursts",
            "sample_points",
        ],
    );
    for kind in [RegionKind::RegA, RegionKind::RegB] {
        let data = ctx.daily(kind);
        let mut summary = DatasetSummary::default();
        let mut bursty = 0u64;
        for obs in &data.obs {
            summary.add(obs, buckets);
            bursty += obs.analysis.bursty_servers as u64;
        }
        debug_assert_eq!(bursty, summary.bursty_server_runs);
        r.row(&[
            format!("{kind:?}"),
            summary.runs.to_string(),
            summary.server_runs.to_string(),
            summary.bursty_server_runs.to_string(),
            summary.bursts.to_string(),
            summary.sample_points.to_string(),
        ]);
    }
    r.finish(&ctx.opts.out);
    println!("  paper (production scale): RegA 22.4K runs / 1.98M server runs / 0.67M bursty / 19.5M bursts");
    println!("  shape check: bursty fraction of server runs ~1/3, bursts >> runs");
}

fn duration_s(data: &RegionData) -> f64 {
    data.config.scenario.interval.as_secs_f64() * data.config.scenario.buckets as f64
}

/// Fig. 6: CDF of bursts/second over bursty server runs (RegA).
pub fn fig6(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.busy(RegionKind::RegA);
    let dur = duration_s(data);
    let rates: Vec<f64> = data
        .obs
        .iter()
        .flat_map(|o| o.analysis.server_runs.iter())
        .filter(|sr| sr.bursts > 0)
        .map(|sr| sr.bursts as f64 / dur)
        .collect();
    let cdf = Cdf::new(rates);
    let mut r = Report::new("fig6", &["bursts_per_sec", "pct_of_server_runs"]);
    for (x, p) in cdf.curve(40) {
        r.row(&[f3(x), f3(p)]);
    }
    r.finish(&out);
    println!(
        "  median {} /s (paper 7.5), p90 {} /s (paper 39.8), n={}",
        f3(cdf.median()),
        f3(cdf.quantile(0.9)),
        cdf.len()
    );
}

/// Fig. 7: burst-length CDFs — all, contended, non-contended (RegA).
pub fn fig7(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.busy(RegionKind::RegA);
    let interval_ms = data.config.scenario.interval.as_nanos() as f64 / 1e6;
    let mut all = Vec::new();
    let mut contended = Vec::new();
    let mut non = Vec::new();
    for o in &data.obs {
        for b in &o.analysis.bursts {
            let len = b.burst.len_ms(interval_ms);
            all.push(len);
            if b.contended {
                contended.push(len);
            } else {
                non.push(len);
            }
        }
    }
    let (all, con, non) = (Cdf::new(all), Cdf::new(contended), Cdf::new(non));
    let mut r = Report::new(
        "fig7",
        &["pct", "all_ms", "contended_ms", "non_contended_ms"],
    );
    for i in 1..=20 {
        let q = i as f64 / 20.0;
        r.row(&[
            f3(100.0 * q),
            f3(all.quantile(q)),
            f3(con.quantile(q)),
            f3(non.quantile(q)),
        ]);
    }
    r.finish(&out);
    println!(
        "  all: median {} ms (paper 2), p90 {} ms (paper 8); non-contended <=3ms fraction {} (paper 0.88)",
        f3(all.median()),
        f3(all.quantile(0.9)),
        f3(non.fraction_at_or_below(3.0)),
    );
    println!(
        "  contended bursts longer than non-contended: {} vs {} ms median (paper: yes)",
        f3(con.median()),
        f3(non.median())
    );
    // Volumes, for the §6 text claims (median 1.8MB / p90 9MB all bursts;
    // 1MB / 2.9MB non-contended).
    let mut vol = |want_contended: Option<bool>| {
        Cdf::new(
            ctx.busy(RegionKind::RegA)
                .obs
                .iter()
                .flat_map(|o| o.analysis.bursts.iter())
                .filter(|b| want_contended.map(|w| b.contended == w).unwrap_or(true))
                .map(|b| b.burst.bytes as f64 / 1e6)
                .collect(),
        )
    };
    let va = vol(None);
    let vn = vol(Some(false));
    println!(
        "  volumes: all median {} MB (paper 1.8), p90 {} (paper 9); non-contended median {} (paper 1.0)",
        f3(va.median()),
        f3(va.quantile(0.9)),
        f3(vn.median())
    );
}

/// Fig. 8: connection counts inside vs. outside bursts (RegA).
pub fn fig8(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let data = ctx.busy(RegionKind::RegA);
    let mut inside = Vec::new();
    let mut outside = Vec::new();
    let mut ratios = Vec::new();
    for o in &data.obs {
        for sr in &o.analysis.server_runs {
            if sr.bursts == 0 {
                continue;
            }
            if !sr.conns_inside.is_nan() {
                inside.push(sr.conns_inside);
            }
            if !sr.conns_outside.is_nan() {
                outside.push(sr.conns_outside);
            }
            if !sr.conns_inside.is_nan() && sr.conns_outside > 0.0 {
                ratios.push(sr.conns_inside / sr.conns_outside);
            }
        }
    }
    let (ci, co, cr) = (Cdf::new(inside), Cdf::new(outside), Cdf::new(ratios));
    let mut r = Report::new(
        "fig8",
        &["pct", "inside_burst_conns", "outside_burst_conns"],
    );
    for i in 1..=20 {
        let q = i as f64 / 20.0;
        r.row(&[f3(100.0 * q), f3(ci.quantile(q)), f3(co.quantile(q))]);
    }
    r.finish(&out);
    println!(
        "  median inside {} vs outside {} conns; median ratio {} (paper 2.7x)",
        f3(ci.median()),
        f3(co.median()),
        f3(cr.median())
    );

    // §6 utilization claims while we have the sweep handy.
    let utils: Vec<f64> = ctx
        .busy(RegionKind::RegA)
        .obs
        .iter()
        .flat_map(|o| o.analysis.server_runs.iter())
        .filter(|sr| sr.bursts > 0)
        .map(|sr| 100.0 * sr.avg_utilization)
        .collect();
    let u = Cdf::new(utils);
    let ui = Cdf::new(
        ctx.busy(RegionKind::RegA)
            .obs
            .iter()
            .flat_map(|o| o.analysis.server_runs.iter())
            .filter(|sr| sr.bursts > 0 && !sr.util_inside_bursts.is_nan())
            .map(|sr| 100.0 * sr.util_inside_bursts)
            .collect(),
    );
    let uo = Cdf::new(
        ctx.busy(RegionKind::RegA)
            .obs
            .iter()
            .flat_map(|o| o.analysis.server_runs.iter())
            .filter(|sr| sr.bursts > 0 && !sr.util_outside_bursts.is_nan())
            .map(|sr| 100.0 * sr.util_outside_bursts)
            .collect(),
    );
    println!(
        "  server-link utilization (bursty runs): median {} (paper 6.4%), p95 {} (paper <45%)",
        pct(u.median()),
        pct(u.quantile(0.95))
    );
    println!(
        "  inside bursts median {} (paper 65.5%), outside median {} (paper 5.5%)",
        pct(ui.median()),
        pct(uo.median())
    );
}
