//! §4.3 performance numbers, in-process.
//!
//! Prints quick wall-clock measurements of the Millisampler hot path and
//! the baselines the paper compares against. The rigorous versions (with
//! statistical analysis) live in the Criterion benches
//! (`cargo bench -p ms-bench`); this subcommand exists so `repro all`
//! leaves a complete record in one place.

use crate::Ctx;
use millisampler::{Direction, PacketMeta, RunConfig, TcFilter};
use ms_bench::report::{f3, Report};
use ms_dcsim::Ns;
use std::hint::black_box;

/// A tcpdump-like baseline: copy a 100-byte "header snapshot" per packet
/// into a ring buffer (the kernel→user copy cost that makes packet capture
/// expensive; the paper measured tcpdump at 271 ns/packet with `-s 100`).
struct PcapLike {
    ring: Vec<u8>,
    pos: usize,
}

impl PcapLike {
    fn new() -> Self {
        PcapLike {
            ring: vec![0u8; 4 * 1024 * 1024],
            pos: 0,
        }
    }

    #[inline]
    fn capture(&mut self, header: &[u8; 100], ts: u64) {
        let end = self.pos + 108;
        if end > self.ring.len() {
            self.pos = 0;
        }
        self.ring[self.pos..self.pos + 8].copy_from_slice(&ts.to_le_bytes());
        self.ring[self.pos + 8..self.pos + 108].copy_from_slice(header);
        self.pos += 108;
    }
}

fn time_per_op<F: FnMut(u64)>(iters: u64, mut f: F) -> f64 {
    let t0 = std::time::Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs the in-process performance comparison.
pub fn perf(ctx: &mut Ctx) {
    const N: u64 = 3_000_000;
    let meta = PacketMeta {
        direction: Direction::Ingress,
        bytes: 1500,
        ecn_ce: false,
        retx_bit: false,
        flow_hash: ms_sketch::mix64(7),
    };

    // Enabled, full feature set (the paper's 88 ns configuration).
    let mut full = TcFilter::new(&RunConfig::one_ms(), 4);
    full.attach();
    full.enable();
    let ns_full = time_per_op(N, |i| {
        // Vary time within the window so all buckets get touched and vary
        // the flow hash so the sketch sees realistic inserts.
        let now = Ns(i % 1_999_000_000);
        let m = PacketMeta {
            flow_hash: ms_sketch::mix64(i % 64),
            ..meta
        };
        full.record((i % 4) as usize, now, black_box(&m));
        // Keep the run alive: re-enable when it self-terminates.
        if full.state() != millisampler::FilterState::Enabled {
            full.enable();
        }
    });

    // Without flow counting (the paper's 84 ns configuration).
    let mut noflow = TcFilter::new(
        &RunConfig {
            count_flows: false,
            ..RunConfig::one_ms()
        },
        4,
    );
    noflow.attach();
    noflow.enable();
    let ns_noflow = time_per_op(N, |i| {
        let now = Ns(i % 1_999_000_000);
        noflow.record((i % 4) as usize, now, black_box(&meta));
        if noflow.state() != millisampler::FilterState::Enabled {
            noflow.enable();
        }
    });

    // Attached but disabled (the 7 ns early-return path).
    let mut disabled = TcFilter::new(&RunConfig::one_ms(), 4);
    disabled.attach();
    let ns_disabled = time_per_op(N, |i| {
        disabled.record((i % 4) as usize, Ns(i), black_box(&meta));
    });

    // The pcap-like copy baseline (the 271 ns tcpdump comparison point).
    let mut pcap = PcapLike::new();
    let header = [0xABu8; 100];
    let ns_pcap = time_per_op(N, |i| {
        pcap.capture(black_box(&header), i);
    });
    black_box(pcap.ring[0]);

    // The fixed-cost map read (§4.3: 4.3 ms regardless of packet count).
    let read_ns = {
        let t0 = std::time::Instant::now();
        let reads = 200;
        for _ in 0..reads {
            black_box(full.read(0));
        }
        t0.elapsed().as_nanos() as f64 / reads as f64
    };

    let mut r = Report::new("perf", &["operation", "ns_per_op", "paper_ns"]);
    r.row(&["record (all features)".into(), f3(ns_full), "88".into()]);
    r.row(&["record (no flow count)".into(), f3(ns_noflow), "84".into()]);
    r.row(&["record (disabled)".into(), f3(ns_disabled), "7".into()]);
    r.row(&["pcap-like header copy".into(), f3(ns_pcap), "271".into()]);
    r.row(&[
        "read counter map (us)".into(),
        f3(read_ns / 1e3),
        "4300".into(),
    ]);
    r.finish(&ctx.opts.out);
    println!("  shape checks: record << pcap copy; disabled path ~an order cheaper than enabled;");
    println!("  no-flow-count slightly cheaper than full. Absolute ns differ from the paper's");
    println!("  1.6GHz Skylake; the ORDERING is the claim under test.");
    println!(
        "  break-even vs pcap after {} packets per run (paper: 33,000), using read cost {}us",
        f3(read_ns / 1e3 * 1e3 / (ns_pcap - ns_full).max(1e-9)),
        f3(read_ns / 1e3)
    );
}
