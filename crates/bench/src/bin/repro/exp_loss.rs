//! §8: contention, bursts, and loss (Table 2, Figs. 16–19).

use crate::Ctx;
use ms_analysis::classify::ClassifiedBurst;
use ms_analysis::dataset::{CategorySummary, RackCategory};
use ms_analysis::stats::Cdf;
use ms_bench::report::{f3, pct, Report};
use ms_bench::RegionData;
use ms_workload::placement::RegionKind;
use std::collections::BTreeSet;

/// Iterates `(category, burst)` over a region's daily observations.
fn categorized_bursts<'a>(
    data: &'a RegionData,
    high: &'a BTreeSet<u32>,
) -> impl Iterator<Item = (RackCategory, &'a ClassifiedBurst)> + 'a {
    data.obs.iter().flat_map(move |o| {
        let cat = data.category_of(o.rack_id, high);
        o.analysis.bursts.iter().map(move |b| (cat, b))
    })
}

const CATEGORIES: [RackCategory; 3] = [
    RackCategory::RegATypical,
    RackCategory::RegAHigh,
    RackCategory::RegB,
];

/// Gathers `(category, burst)` pairs for both regions.
fn all_bursts(ctx: &mut Ctx) -> Vec<(RackCategory, ClassifiedBurst)> {
    let high = ctx.daily(RegionKind::RegA).high_contention_racks();
    let mut out = Vec::new();
    {
        let rega = ctx.daily(RegionKind::RegA);
        out.extend(categorized_bursts(rega, &high).map(|(c, b)| (c, *b)));
    }
    let empty = BTreeSet::new();
    let regb = ctx.daily(RegionKind::RegB);
    out.extend(categorized_bursts(regb, &empty).map(|(c, b)| (c, *b)));
    out
}

/// Table 2: bursts per category, % contended, % lossy.
pub fn table2(ctx: &mut Ctx) {
    let bursts = all_bursts(ctx);
    let mut summaries = [CategorySummary::default(); 3];
    for (cat, b) in &bursts {
        let idx = CATEGORIES.iter().position(|c| c == cat).unwrap();
        let s = &mut summaries[idx];
        s.bursts += 1;
        if b.contended {
            s.contended += 1;
        }
        if b.lossy {
            s.lossy += 1;
        }
    }
    let mut r = Report::new(
        "table2",
        &["category", "bursts", "pct_contended", "pct_lossy"],
    );
    for (cat, s) in CATEGORIES.iter().zip(&summaries) {
        r.row(&[
            cat.to_string(),
            s.bursts.to_string(),
            pct(s.pct_contended()),
            pct(s.pct_lossy()),
        ]);
    }
    r.finish(&ctx.opts.out);
    println!("  paper: Typical 10.2M/70.9%/1.05%; High 9.3M/100%/0.36%; RegB 23.9M/96.8%/0.78%");
    let typical = &summaries[0];
    let high = &summaries[1];
    if typical.bursts > 0 && high.bursts > 0 {
        println!(
            "  surprise check (Typical lossier than High despite less contention): {} vs {} -> {}",
            pct(typical.pct_lossy()),
            pct(high.pct_lossy()),
            if typical.pct_lossy() > high.pct_lossy() {
                "REPRODUCED"
            } else {
                "NOT reproduced at this scale"
            }
        );
    }
}

/// Fig. 16: % of bursts with loss vs. max contention, per category.
pub fn fig16(ctx: &mut Ctx) {
    let bursts = all_bursts(ctx);
    let mut r = Report::new(
        "fig16",
        &[
            "contention",
            "rega_typical_pct_lossy",
            "rega_high_pct_lossy",
            "regb_pct_lossy",
            "n_typical",
            "n_high",
            "n_regb",
        ],
    );
    let max_c = bursts
        .iter()
        .map(|(_, b)| b.max_contention)
        .max()
        .unwrap_or(0);
    for level in 0..=max_c.min(24) {
        let mut cells = vec![level.to_string()];
        let mut counts = Vec::new();
        for cat in CATEGORIES {
            let in_level: Vec<&ClassifiedBurst> = bursts
                .iter()
                .filter(|(c, b)| *c == cat && b.max_contention == level)
                .map(|(_, b)| b)
                .collect();
            let lossy = in_level.iter().filter(|b| b.lossy).count();
            let pct_lossy = if in_level.is_empty() {
                f64::NAN
            } else {
                100.0 * lossy as f64 / in_level.len() as f64
            };
            cells.push(f3(pct_lossy));
            counts.push(in_level.len().to_string());
        }
        cells.extend(counts);
        r.row(&cells);
    }
    r.finish(&ctx.opts.out);
    println!("  paper: loss rises with contention within each class, but Typical >> High at the same level");
}

/// Fig. 17: CDF of switch congestion discards per ingress byte, per RegA
/// category (the SNMP-counter cross-check of the Fig. 16 surprise).
pub fn fig17(ctx: &mut Ctx) {
    let out = ctx.opts.out.clone();
    let high = ctx.daily(RegionKind::RegA).high_contention_racks();
    let data = ctx.daily(RegionKind::RegA);
    let mut per_rack: std::collections::BTreeMap<u32, (u64, u64)> = Default::default();
    for o in &data.obs {
        let e = per_rack.entry(o.rack_id).or_default();
        e.0 += o.outcome.switch_discard_bytes;
        e.1 += o.outcome.switch_ingress_bytes;
    }
    let mut typical = Vec::new();
    let mut high_v = Vec::new();
    for (rack, (drops, ingress)) in &per_rack {
        if *ingress == 0 {
            continue;
        }
        // Discards per MB of traffic.
        let v = *drops as f64 / (*ingress as f64 / 1e6);
        if high.contains(rack) {
            high_v.push(v);
        } else {
            typical.push(v);
        }
    }
    let (ct, ch) = (Cdf::new(typical), Cdf::new(high_v));
    let mut r = Report::new(
        "fig17",
        &[
            "pct_of_racks",
            "typical_discard_bytes_per_mb",
            "high_discard_bytes_per_mb",
        ],
    );
    for i in 1..=20 {
        let q = i as f64 / 20.0;
        r.row(&[f3(100.0 * q), f3(ct.quantile(q)), f3(ch.quantile(q))]);
    }
    r.finish(&out);
    println!(
        "  median normalized discards: Typical {} vs High {} (paper: High sees FEWER discards/byte)",
        f3(ct.median()),
        f3(ch.median())
    );
}

/// Loss rate vs. a per-burst metric, contended vs. non-contended, in
/// RegA-Typical racks (the §8.2 methodology).
fn loss_vs_metric(
    ctx: &mut Ctx,
    name: &str,
    bucket_width: f64,
    max_bucket: f64,
    metric: impl Fn(&ClassifiedBurst, f64) -> f64,
) {
    let out = ctx.opts.out.clone();
    let interval_ms = ctx.opts.scenario().interval.as_nanos() as f64 / 1e6;
    let bursts = all_bursts(ctx);
    let typical: Vec<&ClassifiedBurst> = bursts
        .iter()
        .filter(|(c, _)| *c == RackCategory::RegATypical)
        .map(|(_, b)| b)
        .collect();

    let mut r = Report::new(
        name,
        &[
            "bucket",
            "contended_pct_lossy",
            "non_contended_pct_lossy",
            "contention3plus_pct_lossy",
            "n_contended",
            "n_non",
            "n_c3plus",
        ],
    );
    let buckets = (max_bucket / bucket_width).ceil() as usize;
    for i in 0..buckets {
        let lo = i as f64 * bucket_width;
        let hi = lo + bucket_width;
        let stats = |pred: &dyn Fn(&ClassifiedBurst) -> bool| {
            let sel: Vec<&&ClassifiedBurst> = typical
                .iter()
                .filter(|b| {
                    let m = metric(b, interval_ms);
                    pred(b) && m >= lo && m < hi
                })
                .collect();
            let lossy = sel.iter().filter(|b| b.lossy).count();
            let p = if sel.is_empty() {
                f64::NAN
            } else {
                100.0 * lossy as f64 / sel.len() as f64
            };
            (p, sel.len())
        };
        let (pc, nc) = stats(&|b| b.contended);
        let (pn, nn) = stats(&|b| !b.contended);
        // At simulator rack scale (≈28 servers vs the paper's ≈92) the
        // contended population concentrates at level 2; the ≥3 slice is
        // the regime where the paper's contended/non split shows up.
        let (p3, n3) = stats(&|b| b.max_contention >= 3);
        r.row(&[
            f3(lo + bucket_width / 2.0),
            f3(pc),
            f3(pn),
            f3(p3),
            nc.to_string(),
            nn.to_string(),
            n3.to_string(),
        ]);
    }
    r.finish(&out);
}

/// Fig. 18: % lossy vs. burst length (RegA-Typical).
pub fn fig18(ctx: &mut Ctx) {
    loss_vs_metric(ctx, "fig18", 1.0, 16.0, |b, interval_ms| {
        b.burst.len_ms(interval_ms)
    });
    println!("  paper: loss low for tiny bursts, rises sharply to ~6-10ms, then stabilizes;");
    println!("  contended bursts lossier than non-contended beyond ~8ms");
}

/// Fig. 19: % lossy vs. average connections in the burst (RegA-Typical).
pub fn fig19(ctx: &mut Ctx) {
    loss_vs_metric(ctx, "fig19", 10.0, 90.0, |b, _| b.burst.avg_conns);
    println!("  paper: loss rises with connections then stabilizes; contended 3-4x non-contended");
}
