//! Dimension-bearing integer newtypes shared across the simulator.
//!
//! The paper's measurement stack works in exact integer units — ktime
//! nanoseconds and byte counters per 1 ms window — and the simulator's
//! determinism bar (same seed ⇒ byte-identical traces) only holds if
//! scheduling-relevant arithmetic never runs through floats or silently
//! mixes dimensions. [`Bytes`] and [`Bps`] give volumes and rates distinct
//! types so a rate can't be added to a volume by accident, and simlint's
//! `unit-mismatch` pass seeds its dimension lattice from these names.
//!
//! `Ns` (simulation time) lives in `ms_dcsim::time`; the physics that mixes
//! the three dimensions — serialization time, drain volume — lives there
//! too, as `Ns::tx_time(Bytes, Bps)` and `Ns::bytes_at_rate(Bps)`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte count — a data volume, never a rate and never a duration.
///
/// Plain `u64` arithmetic semantics (add/sub panic on overflow in debug,
/// like the rest of the simulator's counters), plus saturating/checked
/// variants for paths fed by untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);
    /// The largest representable volume; used as an "unlimited" cap.
    pub const MAX: Bytes = Bytes(u64::MAX);

    /// Constructs from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Constructs from whole kibibytes (1024 B).
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib.saturating_mul(1024))
    }

    /// Constructs from whole mebibytes (1024² B).
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib.saturating_mul(1024 * 1024))
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This volume in bits (`None` on overflow — volumes near `u64::MAX`
    /// bytes don't fit in `u64` bits).
    pub const fn checked_bits(self) -> Option<u64> {
        self.0.checked_mul(8)
    }

    /// Saturating subtraction: zero when `rhs > self`.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Absolute difference.
    pub const fn abs_diff(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.abs_diff(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Bytes(v)),
            None => None,
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| Bytes(a.0.saturating_add(b.0)))
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 && b % (1024 * 1024) == 0 {
            write!(f, "{}MiB", b / (1024 * 1024))
        } else if b >= 1024 && b % 1024 == 0 {
            write!(f, "{}KiB", b / 1024)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A link or pacing rate in bits per second.
///
/// Rates are configuration, not accumulators: there is deliberately no
/// `Add`/`Sub` between rates (summing link rates is almost always a unit
/// bug), only scaling by dimensionless factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bps(pub u64);

impl Bps {
    /// Constructs from raw bits per second.
    pub const fn new(bps: u64) -> Self {
        Bps(bps)
    }

    /// Constructs from whole megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bps(mbps.saturating_mul(1_000_000))
    }

    /// Constructs from whole gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bps(gbps.saturating_mul(1_000_000_000))
    }

    /// Raw bits per second.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is a usable (positive) rate.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Scales the rate by `num/den` (e.g. headroom factors). Exact
    /// integer arithmetic with a `u128` intermediate, truncating.
    pub const fn scale(self, num: u64, den: u64) -> Bps {
        assert!(den > 0, "scale denominator must be positive");
        Bps((self.0 as u128 * num as u128 / den as u128) as u64)
    }
}

impl Mul<u64> for Bps {
    type Output = Bps;
    fn mul(self, rhs: u64) -> Bps {
        Bps(self.0 * rhs)
    }
}

impl Div<u64> for Bps {
    type Output = Bps;
    fn div(self, rhs: u64) -> Bps {
        Bps(self.0 / rhs)
    }
}

impl fmt::Display for Bps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 && bps % 1_000_000_000 == 0 {
            write!(f, "{}Gbps", bps / 1_000_000_000)
        } else if bps >= 1_000_000 && bps % 1_000_000 == 0 {
            write!(f, "{}Mbps", bps / 1_000_000)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_and_accessors() {
        assert_eq!(Bytes::from_kib(1), Bytes(1024));
        assert_eq!(Bytes::from_mib(4), Bytes(4 * 1024 * 1024));
        assert_eq!(Bytes(1500).as_u64(), 1500);
        assert_eq!(Bytes(3).checked_bits(), Some(24));
        assert_eq!(Bytes::MAX.checked_bits(), None);
    }

    #[test]
    fn byte_arithmetic() {
        assert_eq!(Bytes(100) + Bytes(50), Bytes(150));
        assert_eq!(Bytes(100) - Bytes(50), Bytes(50));
        assert_eq!(Bytes(5).saturating_sub(Bytes(10)), Bytes::ZERO);
        assert_eq!(Bytes(5).abs_diff(Bytes(12)), Bytes(7));
        assert_eq!(Bytes::MAX.saturating_add(Bytes(1)), Bytes::MAX);
        assert_eq!(Bytes::MAX.checked_add(Bytes(1)), None);
        assert_eq!(Bytes(100) * 3, Bytes(300));
        assert_eq!(Bytes(100) / 3, Bytes(33));
        let total: Bytes = [Bytes(1), Bytes(2), Bytes(3)].into_iter().sum();
        assert_eq!(total, Bytes(6));
    }

    #[test]
    fn byte_display() {
        assert_eq!(format!("{}", Bytes(120)), "120B");
        assert_eq!(format!("{}", Bytes(120 * 1024)), "120KiB");
        assert_eq!(format!("{}", Bytes(4 * 1024 * 1024)), "4MiB");
        assert_eq!(format!("{}", Bytes(1500)), "1500B");
    }

    #[test]
    fn bps_constructors_and_scale() {
        assert_eq!(Bps::from_gbps(12), Bps(12_000_000_000));
        assert_eq!(Bps::from_mbps(100), Bps(100_000_000));
        assert_eq!(Bps::from_gbps(25).scale(1, 2), Bps(12_500_000_000));
        assert_eq!(Bps::from_gbps(10).scale(3, 4), Bps(7_500_000_000));
        assert!(Bps(1).is_positive());
        assert!(!Bps::default().is_positive());
    }

    #[test]
    fn bps_display() {
        assert_eq!(format!("{}", Bps::from_gbps(25)), "25Gbps");
        assert_eq!(format!("{}", Bps::from_mbps(500)), "500Mbps");
        assert_eq!(format!("{}", Bps(12_500_000_000)), "12500Mbps");
        assert_eq!(format!("{}", Bps(42)), "42bps");
    }
}
