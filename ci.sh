#!/usr/bin/env sh
# The workspace's CI gauntlet — identical locally and in Actions.
# Order is cheapest-first so failures surface fast.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> simlint --deny"
cargo run -q -p simlint -- --deny

echo "==> clippy"
# clippy may be absent on minimal toolchains; the simlint + test gates
# still hold there, so degrade loudly rather than fail the run.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D clippy::dbg_macro -D clippy::todo
else
    echo "    (clippy not installed; skipped)"
fi

echo "==> cargo test"
cargo test --workspace -q

echo "==> traced example smoke (Perfetto export)"
TRACE_TMP="${TMPDIR:-/tmp}/ms_trace_smoke.json"
cargo run -q --release -p ms-bench --example incast_loss -- --trace "$TRACE_TMP"
cargo run -q --release -p ms-bench --example trace_check -- "$TRACE_TMP"
rm -f "$TRACE_TMP"

echo "==> fleet sweep smoke (parallel vs serial byte-identity + bench artifact)"
# --bench re-runs the grid serially, asserts the aggregate CSV/JSON are
# byte-identical to the parallel run, and writes BENCH_fleet.json.
FLEET_CSV="${TMPDIR:-/tmp}/ms_fleet_smoke.csv"
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 24 --bytes 1500000 --quiet \
    --csv "$FLEET_CSV" --bench BENCH_fleet.json
rm -f "$FLEET_CSV"

echo "==> CI green"
