#!/usr/bin/env sh
# The workspace's CI gauntlet — identical locally and in Actions.
# Order is cheapest-first so failures surface fast.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> simlint --deny (baseline-gated, bench artifact)"
# New findings fail the run; known ones must be fingerprinted in the
# checked-in simlint.baseline. BENCH_simlint.json records scan size and
# wall time so analyzer slowdowns show up in CI history.
cargo run -q -p simlint -- --deny --baseline simlint.baseline --bench BENCH_simlint.json
grep -q '"files_scanned"' BENCH_simlint.json
# The dataflow tier (units/float passes) must actually have run: the
# bench artifact carries its counters, and a workspace where no
# function carries a dimension or the float fact would mean the passes
# were silently disabled.
grep -q '"float_tainted_fns"' BENCH_simlint.json
grep -q '"dimension_facts"' BENCH_simlint.json
# The PDES-readiness tier (monotonicity/channel/LP passes) must have
# covered real code: zero timestamp sites, channel endpoints, or
# partitioned fields would mean the [monotonic]/[channels]/[lp] config
# rotted out from under the passes.
for counter in monotonic_sites channel_endpoints lp_fields_checked; do
    awk -F'[:,]' -v key="\"$counter\"" '
        $0 ~ key { for (i = 1; i < NF; i++) if ($i ~ key) { n = $(i + 1) + 0 } }
        END {
            if (n < 1) { printf "%s is zero — a PDES pass lost its coverage\n", key; exit 1 }
            printf "    (%s: %d)\n", key, n
        }' BENCH_simlint.json
done
grep -q '"monotonic"' BENCH_simlint.json
grep -q '"channels"' BENCH_simlint.json
grep -q '"lp"' BENCH_simlint.json

echo "==> clippy"
# clippy may be absent on minimal toolchains; the simlint + test gates
# still hold there, so degrade loudly rather than fail the run.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D clippy::dbg_macro -D clippy::todo
else
    echo "    (clippy not installed; skipped)"
fi

echo "==> cargo test"
cargo test --workspace -q

echo "==> traced example smoke (Perfetto export)"
TRACE_TMP="${TMPDIR:-/tmp}/ms_trace_smoke.json"
cargo run -q --release -p ms-bench --example incast_loss -- --trace "$TRACE_TMP"
cargo run -q --release -p ms-bench --example trace_check -- "$TRACE_TMP"
rm -f "$TRACE_TMP"

echo "==> forensics smoke (every drop -> exactly one classified forensic)"
# The example exits non-zero unless the blackbox attributed every
# dropped byte of the contended showcase to one classified record.
cargo run -q --release -p ms-bench --example incast_loss -- --forensics \
    | grep -q '^OK: every dropped byte attributed'

echo "==> engine profiler bench (dispatch determinism + overhead artifact)"
# Runs the showcase stock / traced / wall-clocked, asserts the sim-time
# dispatch counters are identical across all three, and writes
# BENCH_profile.json plus the collapsed-stack flamegraph text.
cargo run -q --release -p ms-bench --example incast_loss -- --profile BENCH_profile.json
grep -q '"bench": "profile"' BENCH_profile.json
grep -q '"detached_hook_overhead_pct"' BENCH_profile.json
grep -q '"telemetry_overhead_pct"' BENCH_profile.json
test -s BENCH_profile.json.folded

echo "==> fleet sweep smoke (parallel vs serial byte-identity + bench artifact)"
# --bench re-runs the grid serially, asserts the aggregate CSV/JSON are
# byte-identical to the parallel run, and writes BENCH_fleet.json.
FLEET_CSV="${TMPDIR:-/tmp}/ms_fleet_smoke.csv"
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 24 --bytes 1500000 --quiet \
    --csv "$FLEET_CSV" --bench BENCH_fleet.json
rm -f "$FLEET_CSV"

echo "==> lake smoke (writer determinism + query fidelity + compression bench)"
LAKE_TMP="${TMPDIR:-/tmp}/ms_lake_smoke"
rm -rf "$LAKE_TMP"
mkdir -p "$LAKE_TMP"
# The same grid at --jobs 1 and --jobs 2 must compact to byte-identical
# segment files (manifest CSV goes to stdout; compare that too). With
# --forensics the comparison also covers the forensics table, so the
# drop-attribution rows themselves are held to the byte-identity bar.
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 1 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --forensics --out-lake "$LAKE_TMP/j1" > "$LAKE_TMP/manifest_j1.csv"
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --forensics --out-lake "$LAKE_TMP/j2" > "$LAKE_TMP/manifest_j2.csv"
diff "$LAKE_TMP/manifest_j1.csv" "$LAKE_TMP/manifest_j2.csv"
for seg in "$LAKE_TMP"/j1/*.msl; do
    cmp "$seg" "$LAKE_TMP/j2/$(basename "$seg")"
done
# The S8 loss-attribution report folds the forensics table out of core;
# both lakes must render the identical histogram.
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/j1" --report attribution --out "$LAKE_TMP/attr_j1.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/j2" --report attribution --out "$LAKE_TMP/attr_j2.csv"
diff "$LAKE_TMP/attr_j1.csv" "$LAKE_TMP/attr_j2.csv"
grep -q '^cell,policy,self_burst,cross_contention,fabric_transient,total$' "$LAKE_TMP/attr_j1.csv"
# The grid is sized to actually drop: the histogram must have rows.
test "$(wc -l < "$LAKE_TMP/attr_j1.csv")" -gt 1
# The lake's out-of-core outcomes report must equal the in-memory
# FleetReport CSV from the same grid, byte for byte.
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --csv "$LAKE_TMP/report.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/j1" --report outcomes --out "$LAKE_TMP/lake_outcomes.csv"
diff "$LAKE_TMP/report.csv" "$LAKE_TMP/lake_outcomes.csv"
# Full verification pass over every segment checksum.
cargo run -q --release -p ms-lake --bin lake -- stat --dir "$LAKE_TMP/j1" > /dev/null
echo "==> buffer-policy sweep smoke (--policies dt,fb, jobs-count byte-identity)"
# A two-policy sweep of one lossy base cell: the per-policy attribution
# report must come back byte-identical for --jobs 1 and --jobs 2, and
# the policy-compare rollup must key one row per swept policy.
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 1 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --seeds 1 --alphas 0.25 --placements single --policies dt,fb \
    --forensics --out-lake "$LAKE_TMP/p1" > /dev/null
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --seeds 1 --alphas 0.25 --placements single --policies dt,fb \
    --forensics --out-lake "$LAKE_TMP/p2" > /dev/null
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/p1" --report attribution --out "$LAKE_TMP/pattr_j1.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/p2" --report attribution --out "$LAKE_TMP/pattr_j2.csv"
diff "$LAKE_TMP/pattr_j1.csv" "$LAKE_TMP/pattr_j2.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/p1" --report policy-compare --out "$LAKE_TMP/pcmp.csv"
grep -q '^policy,cells,' "$LAKE_TMP/pcmp.csv"
grep -q '^dt,1,' "$LAKE_TMP/pcmp.csv"
grep -q '^fb,1,' "$LAKE_TMP/pcmp.csv"

echo "==> multi-rack smoke (k=4 fat-tree incast, jobs-count byte-identity)"
# A cross-pod incast on the k=4 fat-tree: lake segments, the forensic
# attribution histogram, and the per-tier drop split must all come back
# byte-identical for --jobs 1 and --jobs 2, and the drops must land
# above the ToR tier (agg/spine columns nonzero) — the whole point of
# the region topology.
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 1 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --seeds 1 --alphas 1.0 --placements single --topo k4d100 \
    --forensics --out-lake "$LAKE_TMP/t1" > /dev/null
cargo run -q --release -p ms-fleet --bin fleet -- \
    --jobs 2 --buckets 80 --conns 160 --bytes 20000000 --quiet \
    --seeds 1 --alphas 1.0 --placements single --topo k4d100 \
    --forensics --out-lake "$LAKE_TMP/t2" > /dev/null
for seg in "$LAKE_TMP"/t1/*.msl; do
    cmp "$seg" "$LAKE_TMP/t2/$(basename "$seg")"
done
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/t1" --report attribution --out "$LAKE_TMP/tattr_j1.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/t2" --report attribution --out "$LAKE_TMP/tattr_j2.csv"
diff "$LAKE_TMP/tattr_j1.csv" "$LAKE_TMP/tattr_j2.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/t1" --report tiers --out "$LAKE_TMP/tiers_j1.csv"
cargo run -q --release -p ms-lake --bin lake -- query \
    --dir "$LAKE_TMP/t2" --report tiers --out "$LAKE_TMP/tiers_j2.csv"
diff "$LAKE_TMP/tiers_j1.csv" "$LAKE_TMP/tiers_j2.csv"
grep -q '^cell,tor,agg,spine,offswitch,total$' "$LAKE_TMP/tiers_j1.csv"
# Fully cross-pod placement must push loss above the ToR: at least one
# cell row carries nonzero agg or spine drops.
awk -F, 'NR > 1 && ($3 + $4) > 0 { found = 1 } END { exit !found }' "$LAKE_TMP/tiers_j1.csv"

# 24-hour diurnal corpus: the columnar encoding must beat raw column
# bytes by >= 4x; BENCH_lake.json records the ratio and scan rate.
cargo run -q --release -p ms-lake --bin lake -- bench \
    --dir "$LAKE_TMP/bench" --json BENCH_lake.json
grep -q '"bench": "lake"' BENCH_lake.json
awk -F': ' '/"compression_vs_raw"/ {
    ratio = $2 + 0
    if (ratio < 4.0) { printf "lake compression %.2fx is below the 4x gate\n", ratio; exit 1 }
    printf "    (compression_vs_raw: %.2fx)\n", ratio
}' BENCH_lake.json
rm -rf "$LAKE_TMP"

echo "==> CI green"
