#!/usr/bin/env sh
# The workspace's CI gauntlet — identical locally and in Actions.
# Order is cheapest-first so failures surface fast.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> simlint --deny"
cargo run -q -p simlint -- --deny

echo "==> clippy"
# clippy may be absent on minimal toolchains; the simlint + test gates
# still hold there, so degrade loudly rather than fail the run.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D clippy::dbg_macro -D clippy::todo
else
    echo "    (clippy not installed; skipped)"
fi

echo "==> cargo test"
cargo test --workspace -q

echo "==> traced example smoke (Perfetto export)"
TRACE_TMP="${TMPDIR:-/tmp}/ms_trace_smoke.json"
cargo run -q --release -p ms-bench --example incast_loss -- --trace "$TRACE_TMP"
cargo run -q --release -p ms-bench --example trace_check -- "$TRACE_TMP"
rm -f "$TRACE_TMP"

echo "==> CI green"
